// EventPool: slab growth, LIFO recycling, generation staling and exact
// cancellation tallies — the invariants the engine's handle safety and
// lazy-compaction trigger are built on.
#include "sim/event_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace satin::sim {
namespace {

TEST(EventPool, GrowsOneSlabLazilyAndServesLifo) {
  EventPool pool;
  EXPECT_EQ(pool.capacity(), 0u);
  const std::uint32_t a = pool.allocate();
  EXPECT_EQ(pool.capacity(), EventPool::kSlabSlots);
  EXPECT_EQ(pool.slab_grows(), 1u);
  pool.state(a).location = EventLocation::kHeap;
  pool.release(a);
  // LIFO: the slot just released is the next one handed out.
  const std::uint32_t b = pool.allocate();
  EXPECT_EQ(b, a);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.slab_grows(), 1u);
}

TEST(EventPool, ReleaseStalesOutstandingGenerations) {
  EventPool pool;
  const std::uint32_t i = pool.allocate();
  const std::uint32_t gen = pool.state(i).generation;
  pool.state(i).location = EventLocation::kWheel;
  EXPECT_TRUE(pool.matches(i, gen));
  pool.release(i);
  EXPECT_FALSE(pool.matches(i, gen));
  // The recycled occupant carries a fresh generation; the stale one still
  // fails to match and a stale cancel() changes nothing.
  const std::uint32_t j = pool.allocate();
  ASSERT_EQ(j, i);
  pool.state(j).location = EventLocation::kWheel;
  EXPECT_FALSE(pool.matches(i, gen));
  EXPECT_FALSE(pool.cancel(i, gen));
  EXPECT_FALSE(pool.state(j).cancelled);
  EXPECT_TRUE(pool.matches(j, pool.state(j).generation));
}

TEST(EventPool, MatchesRejectsOutOfRangeAndUnqueuedSlots) {
  EventPool pool;
  EXPECT_FALSE(pool.matches(0, 0));        // nothing allocated yet
  EXPECT_FALSE(pool.matches(12345, 0));    // out of range
  const std::uint32_t i = pool.allocate();
  // location is still kNone until the engine queues the entry: a handle
  // to a released-then-reallocated slot must not match mid-flight.
  EXPECT_FALSE(pool.matches(i, pool.state(i).generation));
}

TEST(EventPool, CancellationTalliesStayExact) {
  EventPool pool;
  std::vector<std::uint32_t> heap_slots, wheel_slots;
  for (int k = 0; k < 4; ++k) {
    const std::uint32_t i = pool.allocate();
    pool.state(i).location = EventLocation::kHeap;
    heap_slots.push_back(i);
    const std::uint32_t w = pool.allocate();
    pool.state(w).location = EventLocation::kWheel;
    wheel_slots.push_back(w);
  }
  EXPECT_EQ(pool.pending(), 8u);
  EXPECT_TRUE(pool.cancel(heap_slots[0], pool.state(heap_slots[0]).generation));
  EXPECT_TRUE(
      pool.cancel(wheel_slots[0], pool.state(wheel_slots[0]).generation));
  EXPECT_EQ(pool.cancelled_live(), 2u);
  EXPECT_EQ(pool.cancelled_in_heap(), 1u);  // only the heap-resident one
  EXPECT_EQ(pool.pending(), 6u);
  // Double-cancel is a no-op, not a double-count.
  EXPECT_FALSE(
      pool.cancel(heap_slots[0], pool.state(heap_slots[0]).generation));
  EXPECT_EQ(pool.cancelled_live(), 2u);
  // Releasing the cancelled entries settles both tallies.
  pool.release(heap_slots[0]);
  pool.release(wheel_slots[0]);
  EXPECT_EQ(pool.cancelled_live(), 0u);
  EXPECT_EQ(pool.cancelled_in_heap(), 0u);
  EXPECT_EQ(pool.pending(), 6u);
}

TEST(EventPool, HighWaterTracksPeakOccupancy) {
  EventPool pool;
  std::vector<std::uint32_t> slots;
  for (int k = 0; k < 300; ++k) {
    const std::uint32_t i = pool.allocate();
    pool.state(i).location = EventLocation::kHeap;
    slots.push_back(i);
  }
  EXPECT_EQ(pool.occupancy_high_water(), 300u);
  EXPECT_EQ(pool.slab_grows(), 2u);  // 300 > 256 forced a second slab
  for (const std::uint32_t i : slots) pool.release(i);
  const std::uint32_t i = pool.allocate();
  pool.state(i).location = EventLocation::kHeap;
  pool.release(i);
  // Draining and light reuse never lowers the recorded peak.
  EXPECT_EQ(pool.occupancy_high_water(), 300u);
  EXPECT_EQ(pool.slab_grows(), 2u);
}

}  // namespace
}  // namespace satin::sim
