// BatchRunner / run_sharded: the lockstep engine must be an identity
// transform over TrialRunner::run() — same submission-order result slots,
// same merged obs, same first-error rethrow — for every shard size. The
// duel-level test at the bottom closes the loop end-to-end: a real
// run_duel_sweep at --batch=K (batched draw pipeline and all) must
// reproduce the --batch=1 scalar run of record field for field.
#include "sim/batch.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "scenario/experiments.h"
#include "sim/parallel.h"
#include "sim/time.h"

namespace satin::sim {
namespace {

// Synthetic lockstep citizen: runs for a fixed number of quanta, logs its
// phase transitions into a shared (jobs=1 only) journal, and writes its
// result into a submission-order slot on finish().
class CountingTrial final : public LockstepTrial {
 public:
  CountingTrial(const TrialContext& ctx, int quanta, std::vector<int>* slots,
                std::vector<std::string>* journal)
      : index_(ctx.index), quanta_(quanta), slots_(slots), journal_(journal) {
    if (journal_ != nullptr) {
      journal_->push_back("c" + std::to_string(index_));
    }
  }

  bool done() const override { return advanced_ >= quanta_; }

  void advance(Duration quantum) override {
    EXPECT_GT(quantum, Duration::zero());
    ++advanced_;
    if (journal_ != nullptr) {
      journal_->push_back("a" + std::to_string(index_));
    }
  }

  void finish() override {
    if (slots_ != nullptr) {
      (*slots_)[index_] = advanced_;
    }
    if (journal_ != nullptr) {
      journal_->push_back("f" + std::to_string(index_));
    }
  }

 private:
  std::size_t index_;
  int quanta_;
  int advanced_ = 0;
  std::vector<int>* slots_;
  std::vector<std::string>* journal_;
};

TEST(BatchRunner, ResultsLandInSubmissionOrderSlotsForAnyBatch) {
  for (std::size_t batch : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                            std::size_t{8}, std::size_t{64}}) {
    BatchRunnerOptions options;
    options.batch = batch;
    options.runner.jobs = 4;
    BatchRunner runner(options);
    std::vector<int> slots(17, -1);
    runner.run(slots.size(), [&slots](const TrialContext& ctx) {
      // Trial i runs for (i % 5) + 1 quanta: uneven lengths inside one
      // shard exercise the round-robin's skip-finished slots.
      return std::make_unique<CountingTrial>(
          ctx, static_cast<int>(ctx.index % 5) + 1, &slots, nullptr);
    });
    for (std::size_t i = 0; i < slots.size(); ++i) {
      EXPECT_EQ(slots[i], static_cast<int>(i % 5) + 1)
          << "batch=" << batch << " trial=" << i;
    }
    EXPECT_EQ(runner.trials_run(), slots.size());
  }
}

TEST(BatchRunner, ShardMatesAdvanceInLockstepRoundRobin) {
  // jobs=1 and one shard of 3: the interleaving is fully deterministic.
  BatchRunnerOptions options;
  options.batch = 3;
  options.runner.jobs = 1;
  BatchRunner runner(options);
  std::vector<int> slots(3, -1);
  std::vector<std::string> journal;
  runner.run(3, [&slots, &journal](const TrialContext& ctx) {
    const int quanta[] = {2, 1, 3};
    return std::make_unique<CountingTrial>(ctx, quanta[ctx.index], &slots,
                                           &journal);
  });
  // Construction first (in shard order), then round-robin quanta; a trial
  // finishes in the same pass as its last advance and drops out.
  const std::vector<std::string> expected = {
      "c0", "c1", "c2",              // shard construction
      "a0", "a1", "f1", "a2",        // pass 1: trial 1 (1 quantum) retires
      "a0", "f0", "a2",              // pass 2: trial 0 retires
      "a2", "f2",                    // pass 3: trial 2 retires
  };
  EXPECT_EQ(journal, expected);
}

TEST(BatchRunner, JobsForCountsShardsNotTrials) {
  BatchRunnerOptions options;
  options.batch = 8;
  options.runner.jobs = 16;
  BatchRunner runner(options);
  EXPECT_EQ(runner.batch(), 8u);
  // 20 trials / batch 8 = 3 shards; the pool is clamped to shards (and to
  // hardware, but 3 <= any hardware count this code runs on... no — the
  // clamp also caps at options.jobs resolved vs hardware; assert <= 3).
  EXPECT_LE(runner.jobs_for(20), 3);
  EXPECT_GE(runner.jobs_for(20), 1);
  EXPECT_EQ(runner.jobs_for(0), 1);  // degenerate: pool floor is 1
}

TEST(BatchRunner, BatchZeroClampsToOneAndZeroTrialsIsANoOp) {
  BatchRunnerOptions options;
  options.batch = 0;
  options.quantum = Duration::zero();
  BatchRunner runner(options);
  EXPECT_EQ(runner.batch(), 1u);
  bool made = false;
  runner.run(0, [&made](const TrialContext&) -> std::unique_ptr<LockstepTrial> {
    made = true;
    return nullptr;
  });
  EXPECT_FALSE(made);
  EXPECT_EQ(runner.trials_run(), 0u);
}

TEST(BatchRunner, NullFactoryResultSkipsTheSlot) {
  BatchRunnerOptions options;
  options.batch = 4;
  BatchRunner runner(options);
  std::vector<int> slots(6, -1);
  runner.run(slots.size(),
             [&slots](const TrialContext& ctx) -> std::unique_ptr<LockstepTrial> {
               if (ctx.index == 2) return nullptr;
               return std::make_unique<CountingTrial>(ctx, 1, &slots, nullptr);
             });
  for (std::size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], i == 2 ? -1 : 1) << "trial " << i;
  }
}

// The per-trial obs emission, split across the lockstep phases exactly as
// a real trial would split it; the run() twin emits the same calls in the
// same per-trial order from a plain trial function.
void emit_construct_obs(std::size_t index) {
  SATIN_METRIC_INC("batch.trials");
  SATIN_TRACE_INSTANT_ARG("test", "construct", Time::zero(),
                          static_cast<int>(index % 4), obs::kWorldNormal,
                          "index", index);
}
void emit_advance_obs(std::size_t index) {
  SATIN_METRIC_INC("batch.advances");
  SATIN_METRIC_OBSERVE("batch.step", 1e-3 * static_cast<double>(index));
}
void emit_finish_obs(std::size_t index) {
  SATIN_METRIC_ADD("batch.index_sum", index);
  SATIN_METRIC_GAUGE_SET("batch.last_index", index);
}

class ObsEmittingTrial final : public LockstepTrial {
 public:
  ObsEmittingTrial(const TrialContext& ctx, int quanta)
      : index_(ctx.index), quanta_(quanta) {
    emit_construct_obs(index_);
  }
  bool done() const override { return advanced_ >= quanta_; }
  void advance(Duration) override {
    ++advanced_;
    emit_advance_obs(index_);
  }
  void finish() override { emit_finish_obs(index_); }

 private:
  std::size_t index_;
  int quanta_;
  int advanced_ = 0;
};

int quanta_for(std::size_t index) { return static_cast<int>(index % 3) + 1; }

std::string sharded_metrics_json(std::size_t batch, int jobs,
                                 std::size_t trials) {
  obs::MetricsRegistry registry;
  obs::install_metrics(&registry);
  BatchRunnerOptions options;
  options.batch = batch;
  options.runner.jobs = jobs;
  BatchRunner runner(options);
  runner.run(trials, [](const TrialContext& ctx) {
    return std::make_unique<ObsEmittingTrial>(ctx, quanta_for(ctx.index));
  });
  obs::install_metrics(nullptr);
  return registry.to_json();
}

TEST(BatchRunner, MergedMetricsAreByteIdenticalToTrialRunnerRun) {
  // The unsharded twin: same emissions, same per-trial order, via run().
  obs::MetricsRegistry registry;
  obs::install_metrics(&registry);
  TrialRunnerOptions options;
  options.jobs = 4;
  TrialRunner plain(options);
  plain.run(std::size_t{23}, [](const TrialContext& ctx) {
    emit_construct_obs(ctx.index);
    for (int k = 0; k < quanta_for(ctx.index); ++k) emit_advance_obs(ctx.index);
    emit_finish_obs(ctx.index);
  });
  obs::install_metrics(nullptr);
  const std::string reference = registry.to_json();

  for (std::size_t batch : {std::size_t{1}, std::size_t{4}, std::size_t{23},
                            std::size_t{64}}) {
    EXPECT_EQ(sharded_metrics_json(batch, 1, 23), reference)
        << "batch=" << batch << " jobs=1";
    EXPECT_EQ(sharded_metrics_json(batch, 4, 23), reference)
        << "batch=" << batch << " jobs=4";
  }
}

TEST(BatchRunner, TraceEventsMergeInSubmissionOrderAcrossShards) {
  for (std::size_t batch : {std::size_t{1}, std::size_t{3}}) {
    obs::TraceRecorder recorder(1024);
    obs::install_tracer(&recorder);
    BatchRunnerOptions options;
    options.batch = batch;
    options.runner.jobs = 4;
    BatchRunner runner(options);
    runner.run(std::size_t{12}, [](const TrialContext& ctx) {
      return std::make_unique<ObsEmittingTrial>(ctx, 1);
    });
    obs::install_tracer(nullptr);
    const auto events = recorder.snapshot();
#if SATIN_OBS_ENABLED
    ASSERT_EQ(events.size(), 12u) << "batch=" << batch;
    for (std::size_t i = 0; i < events.size(); ++i) {
      EXPECT_DOUBLE_EQ(events[i].arg_value, static_cast<double>(i))
          << "batch=" << batch;
    }
#else
    EXPECT_TRUE(events.empty());
#endif
  }
}

class ThrowingTrial final : public LockstepTrial {
 public:
  ThrowingTrial(const TrialContext& ctx, int throw_at, std::vector<int>* slots)
      : index_(ctx.index), throw_at_(throw_at), slots_(slots) {}
  bool done() const override { return advanced_ >= 3; }
  void advance(Duration) override {
    if (throw_at_ >= 0 && advanced_ == throw_at_) {
      throw std::runtime_error("trial " + std::to_string(index_));
    }
    ++advanced_;
  }
  void finish() override { (*slots_)[index_] = advanced_; }

 private:
  std::size_t index_;
  int throw_at_;
  int advanced_ = 0;
  std::vector<int>* slots_;
};

TEST(BatchRunner, ThrowingTrialIsCapturedAndShardMatesFinish) {
  for (std::size_t batch : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    BatchRunnerOptions options;
    options.batch = batch;
    options.runner.jobs = 2;
    BatchRunner runner(options);
    std::vector<int> slots(10, -1);
    try {
      runner.run(slots.size(), [&slots](const TrialContext& ctx) {
        // Trials 2 and 7 blow up mid-lockstep; everyone else completes.
        const int throw_at =
            (ctx.index == 2 || ctx.index == 7) ? 1 : -1;
        return std::make_unique<ThrowingTrial>(ctx, throw_at, &slots);
      });
      FAIL() << "expected rethrow (batch=" << batch << ")";
    } catch (const std::runtime_error& e) {
      // First by submission order, regardless of shard layout.
      EXPECT_STREQ(e.what(), "trial 2") << "batch=" << batch;
    }
    for (std::size_t i = 0; i < slots.size(); ++i) {
      EXPECT_EQ(slots[i], (i == 2 || i == 7) ? -1 : 3)
          << "batch=" << batch << " trial=" << i;
    }
  }
}

TEST(BatchRunner, ThrowingFactoryIsCapturedAndShardMatesStillRun) {
  BatchRunnerOptions options;
  options.batch = 4;
  BatchRunner runner(options);
  std::vector<int> slots(4, -1);
  EXPECT_THROW(
      runner.run(slots.size(),
                 [&slots](const TrialContext& ctx)
                     -> std::unique_ptr<LockstepTrial> {
                   if (ctx.index == 1) throw std::runtime_error("ctor boom");
                   return std::make_unique<CountingTrial>(ctx, 2, &slots,
                                                          nullptr);
                 }),
      std::runtime_error);
  EXPECT_EQ(slots[0], 2);
  EXPECT_EQ(slots[1], -1);
  EXPECT_EQ(slots[2], 2);
  EXPECT_EQ(slots[3], 2);
}

// ---------------------------------------------------------------------------
// End-to-end: a real duel sweep must be invariant under --batch. This is
// the scenario-level closure of the draw-pipeline identity chain: batched
// streams bit-match the scalar oracle (rng_test), the shared time buffer
// bit-matches across modes (time_buffer_test), so whole DuelReports must
// too — and the merged engine metrics with them.

void expect_reports_equal(const scenario::DuelReport& a,
                          const scenario::DuelReport& b, std::size_t trial,
                          std::size_t batch) {
  const std::string where =
      "trial=" + std::to_string(trial) + " batch=" + std::to_string(batch);
  EXPECT_EQ(a.rounds, b.rounds) << where;
  EXPECT_EQ(a.alarms, b.alarms) << where;
  EXPECT_EQ(a.full_cycles, b.full_cycles) << where;
  EXPECT_EQ(a.target_area, b.target_area) << where;
  EXPECT_EQ(a.target_area_rounds, b.target_area_rounds) << where;
  EXPECT_EQ(a.target_area_alarms, b.target_area_alarms) << where;
  EXPECT_DOUBLE_EQ(a.avg_target_gap_s, b.avg_target_gap_s) << where;
  EXPECT_EQ(a.secure_stays, b.secure_stays) << where;
  EXPECT_EQ(a.prober_detections, b.prober_detections) << where;
  EXPECT_EQ(a.false_positives, b.false_positives) << where;
  EXPECT_EQ(a.false_negatives, b.false_negatives) << where;
  EXPECT_EQ(a.evasions_started, b.evasions_started) << where;
  EXPECT_EQ(a.rearms, b.rearms) << where;
  EXPECT_DOUBLE_EQ(a.sim_seconds, b.sim_seconds) << where;
  EXPECT_EQ(a.confirmed_alarms, b.confirmed_alarms) << where;
  EXPECT_EQ(a.transient_alarms, b.transient_alarms) << where;
  EXPECT_EQ(a.benign_confirmed_alarms, b.benign_confirmed_alarms) << where;
  EXPECT_EQ(a.watchdog_fires, b.watchdog_fires) << where;
  EXPECT_EQ(a.scan_retries, b.scan_retries) << where;
}

scenario::DuelSweep run_sweep_with_batch(int batch, std::size_t trials,
                                         std::string* metrics_json) {
  obs::MetricsRegistry registry;
  obs::install_metrics(&registry);
  scenario::DuelSweepConfig config;
  config.duel.satin.tp_s = 2.0;
  config.duel.rounds_target = 8;
  config.trials = trials;
  config.jobs = 1;
  config.root_seed = 0xBA7C4ull;
  config.batch = batch;
  scenario::DuelSweep sweep = scenario::run_duel_sweep(config);
  obs::install_metrics(nullptr);
  if (metrics_json != nullptr) *metrics_json = registry.to_json();
  return sweep;
}

TEST(BatchRunner, DuelSweepIsInvariantUnderBatchSize) {
  const std::size_t kTrials = 4;
  std::string reference_metrics;
  const scenario::DuelSweep reference =
      run_sweep_with_batch(1, kTrials, &reference_metrics);
  ASSERT_EQ(reference.reports.size(), kTrials);

  // batch=3 splits the 4 trials into shards {3,1}; batch=8 puts all four
  // in one shard. Both flip the platforms to the batched draw pipeline.
  for (int batch : {3, 8}) {
    std::string metrics;
    const scenario::DuelSweep sweep =
        run_sweep_with_batch(batch, kTrials, &metrics);
    ASSERT_EQ(sweep.reports.size(), kTrials) << "batch=" << batch;
    EXPECT_EQ(sweep.jobs, reference.jobs) << "batch=" << batch;
    for (std::size_t i = 0; i < kTrials; ++i) {
      expect_reports_equal(reference.reports[i], sweep.reports[i], i,
                           static_cast<std::size_t>(batch));
    }
    EXPECT_EQ(metrics, reference_metrics) << "batch=" << batch;
  }
}

}  // namespace
}  // namespace satin::sim
