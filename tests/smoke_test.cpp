// End-to-end smoke: the full stack assembles, SATIN runs rounds, the
// evader probes and hides, and the headline dynamics hold on a short run.
#include <gtest/gtest.h>

#include "scenario/experiments.h"

namespace satin {
namespace {

TEST(Smoke, SatinCatchesEvaderOnShortRun) {
  scenario::Scenario scenario;
  scenario::DuelConfig duel;
  duel.satin.tgoal_s = 38.0;  // tp = 2 s: a fast cycle for the smoke test
  duel.rounds_target = 40;    // ~2 full cycles
  const auto report = scenario::run_duel(scenario, duel);

  EXPECT_GE(report.rounds, 40u);
  EXPECT_GE(report.full_cycles, 1u);
  EXPECT_EQ(report.target_area, 14);
  EXPECT_GE(report.target_area_rounds, 2u);
  // SATIN's area bound beats the evader every time it scans area 14.
  EXPECT_TRUE(report.satin_always_caught())
      << "alarms " << report.target_area_alarms << "/"
      << report.target_area_rounds;
  // The prober notices every introspection round (0 FP / 0 FN).
  EXPECT_EQ(report.false_positives, 0u);
  EXPECT_EQ(report.false_negatives, 0u);
  EXPECT_EQ(report.secure_stays, report.rounds);
}

TEST(Smoke, EvaderBeatsPkmBaselineOnShortRun) {
  scenario::Scenario scenario;
  scenario::DuelConfig duel;
  duel.satin = core::make_pkm_baseline_config(/*period_s=*/2.0,
                                              /*random_core=*/true,
                                              /*random_time=*/true);
  duel.rounds_target = 10;
  const auto report = scenario::run_duel(scenario, duel);

  EXPECT_GE(report.rounds, 10u);
  EXPECT_EQ(report.target_area, 0);  // single whole-kernel area
  EXPECT_EQ(report.target_area_rounds, report.rounds);
  // The hijacked entry sits ~9.5 MB into the scan; the evader hides in
  // <10 ms — every full-kernel pass misses it.
  EXPECT_TRUE(report.evader_always_escaped())
      << "alarms " << report.target_area_alarms;
  EXPECT_EQ(report.false_negatives, 0u);
}

}  // namespace
}  // namespace satin
