#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace satin::obs {
namespace {

sim::Time at_us(std::int64_t us) { return sim::Time::from_us(us); }

TEST(TraceRecorderTest, RecordsInOrderBelowCapacity) {
  TraceRecorder rec(8);
  rec.instant("hw", "a", at_us(1), 0, kWorldNormal);
  rec.instant("hw", "b", at_us(2), 1, kWorldSecure);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_EQ(events[0].t_ps, at_us(1).ps());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorderTest, RingWrapsOverwritingOldest) {
  TraceRecorder rec(4);
  static const char* kNames[] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (int i = 0; i < 6; ++i) {
    rec.instant("t", kNames[i], at_us(i), 0, kWorldNone);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.dropped(), 2u);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest two were overwritten; snapshot unwinds oldest-first.
  EXPECT_STREQ(events[0].name, "e2");
  EXPECT_STREQ(events[1].name, "e3");
  EXPECT_STREQ(events[2].name, "e4");
  EXPECT_STREQ(events[3].name, "e5");
}

TEST(TraceRecorderTest, AppendFromWrappedRingKeepsRecordingOrder) {
  // A wrapped source ring must merge in recording order (oldest first),
  // not in raw storage order — the TrialRunner relies on this when a
  // trial overflows its per-trial ring.
  TraceRecorder src(4);
  static const char* kNames[] = {"e0", "e1", "e2", "e3", "e4", "e5"};
  for (int i = 0; i < 6; ++i) {
    src.instant("t", kNames[i], at_us(i), 0, kWorldNone);
  }
  TraceRecorder dst(16);
  dst.instant("t", "pre", at_us(100), 0, kWorldNone);
  dst.append_from(src);
  const auto events = dst.snapshot();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_STREQ(events[0].name, "pre");
  EXPECT_STREQ(events[1].name, "e2");
  EXPECT_STREQ(events[4].name, "e5");
}

TEST(TraceRecorderTest, AppendFromRotatesWhenTargetOverflows) {
  // Merging more events than the target holds rotates the target ring:
  // the newest events survive and the drop count records the loss.
  TraceRecorder src(8);
  static const char* kNames[] = {"m0", "m1", "m2", "m3", "m4", "m5"};
  for (int i = 0; i < 6; ++i) {
    src.instant("t", kNames[i], at_us(i), 0, kWorldNone);
  }
  TraceRecorder dst(4);
  dst.append_from(src);
  EXPECT_EQ(dst.size(), 4u);
  EXPECT_EQ(dst.dropped(), 2u);
  const auto events = dst.snapshot();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, "m2");
  EXPECT_STREQ(events[3].name, "m5");
}

TEST(TraceRecorderTest, ClearResetsRingAndDropCount) {
  TraceRecorder rec(2);
  for (int i = 0; i < 5; ++i) rec.instant("t", "x", at_us(i), 0, kWorldNone);
  EXPECT_GT(rec.dropped(), 0u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.dropped(), 0u);
  rec.instant("t", "fresh", at_us(9), 0, kWorldNone);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "fresh");
}

TEST(TraceRecorderTest, SpanPairingSurvivesExport) {
  TraceRecorder rec(16);
  rec.begin("secure", "scan", at_us(10), 2, kWorldSecure);
  rec.end("secure", "scan", at_us(30), 2, kWorldSecure);
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].phase, TracePhase::kBegin);
  EXPECT_EQ(events[1].phase, TracePhase::kEnd);
  EXPECT_EQ(events[0].core, events[1].core);
  EXPECT_EQ(events[0].world, events[1].world);
  EXPECT_LT(events[0].t_ps, events[1].t_ps);

  const std::string json = rec.to_chrome_json();
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"scan\""), std::string::npos);
  // Both halves of the pair land on the same track (pid/tid).
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceRecorderTest, TracksSeparateCoresAndWorlds) {
  TraceRecorder rec(16);
  rec.begin("hw", "secure_world", at_us(1), 0, kWorldSecure);
  rec.begin("hw", "slice", at_us(1), 1, kWorldNormal);
  rec.instant("engine", "tick", at_us(2), kGlobalTrack, kWorldNone);
  const std::string json = rec.to_chrome_json();
  EXPECT_NE(json.find("core0/secure"), std::string::npos);
  EXPECT_NE(json.find("core1/normal"), std::string::npos);
  EXPECT_NE(json.find("\"engine\""), std::string::npos);
}

TEST(TraceRecorderTest, ChromeJsonIsDeterministic) {
  auto build = [] {
    TraceRecorder rec(8);
    rec.begin("a", "s", at_us(5), 0, kWorldSecure);
    rec.instant("a", "i", at_us(6), 1, kWorldNormal, "v", 1.5);
    rec.end("a", "s", at_us(7), 0, kWorldSecure);
    rec.counter("depth", at_us(7), 3.0);
    return rec.to_chrome_json();
  };
  EXPECT_EQ(build(), build());
}

TEST(TraceRecorderTest, JsonlHasOneObjectPerEvent) {
  TraceRecorder rec(8);
  rec.instant("x", "one", at_us(1), 0, kWorldNormal);
  rec.instant("x", "two", at_us(2), 0, kWorldNormal, "arg", 4.0);
  const std::string jsonl = rec.to_jsonl();
  std::size_t lines = 0;
  for (char c : jsonl) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(jsonl.find("\"one\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"arg\""), std::string::npos);
}

TEST(JsonEscapeTest, EscapesSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape("a\tb"), "a\\tb");
  EXPECT_EQ(json_escape("a\rb"), "a\\rb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(TraceMacroTest, MacrosNoOpWithoutInstalledRecorder) {
  install_tracer(nullptr);
  // Must not crash or record anywhere.
  SATIN_TRACE_BEGIN("t", "x", at_us(1), 0, kWorldNormal);
  SATIN_TRACE_END("t", "x", at_us(2), 0, kWorldNormal);
  SATIN_TRACE_INSTANT("t", "y", at_us(3), 0, kWorldNormal);
  SATIN_TRACE_COUNTER("c", at_us(3), 7);
  SUCCEED();
}

TEST(TraceMacroTest, MacrosEmitIntoInstalledRecorder) {
  TraceRecorder rec(8);
  install_tracer(&rec);
  SATIN_TRACE_BEGIN("t", "x", at_us(1), 0, kWorldSecure);
  SATIN_TRACE_INSTANT_ARG("t", "y", at_us(2), 1, kWorldNormal, "area", 14);
  install_tracer(nullptr);
  SATIN_TRACE_INSTANT("t", "after", at_us(3), 0, kWorldNormal);

#if SATIN_OBS_ENABLED
  const auto events = rec.snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_STREQ(events[1].arg_name, "area");
  EXPECT_DOUBLE_EQ(events[1].arg_value, 14.0);
#else
  EXPECT_EQ(rec.size(), 0u);
#endif
}

}  // namespace
}  // namespace satin::obs
