#include "obs/digest.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <vector>

namespace satin::obs {
namespace {

// Full-state equality: permutation invariance is asserted on the raw
// counts, not just the derived quantiles.
void expect_same_state(const QuantileDigest& a, const QuantileDigest& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.underflow(), b.underflow());
  EXPECT_EQ(a.overflow(), b.overflow());
  EXPECT_DOUBLE_EQ(a.min(), b.min());
  EXPECT_DOUBLE_EQ(a.max(), b.max());
  EXPECT_EQ(a.buckets(), b.buckets());
}

TEST(QuantileDigestTest, EmptyDigestReadsAsZero) {
  QuantileDigest d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_DOUBLE_EQ(d.min(), 0.0);
  EXPECT_DOUBLE_EQ(d.max(), 0.0);
  EXPECT_DOUBLE_EQ(d.p50(), 0.0);
  EXPECT_DOUBLE_EQ(d.p99(), 0.0);
}

TEST(QuantileDigestTest, TracksExactMinAndMax) {
  QuantileDigest d;
  d.observe(3.5);
  d.observe(0.125);
  d.observe(8000.0);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_DOUBLE_EQ(d.min(), 0.125);
  EXPECT_DOUBLE_EQ(d.max(), 8000.0);
}

TEST(QuantileDigestTest, QuantilesWithinBucketRelativeError) {
  // The grid has 8 sub-buckets per octave: any reconstructed quantile must
  // sit within one bucket (~9% relative) of the true order statistic.
  QuantileDigest d;
  std::vector<double> values;
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> dist(1e-6, 1e3);
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    values.push_back(v);
    d.observe(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.95, 0.99}) {
    const double exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const double approx = d.quantile(q);
    EXPECT_NEAR(approx, exact, exact * 0.10) << "q=" << q;
  }
  EXPECT_LE(d.quantile(1.0), d.max());
  EXPECT_GE(d.quantile(0.0), d.min());
}

TEST(QuantileDigestTest, OutOfRangeValuesLandInEdgeBins) {
  QuantileDigest d;
  d.observe(-1.0);  // negative -> underflow
  d.observe(0.0);   // zero -> underflow
  d.observe(std::numeric_limits<double>::infinity());   // -> overflow
  d.observe(std::numeric_limits<double>::quiet_NaN());  // -> overflow
  EXPECT_EQ(d.underflow(), 2u);
  EXPECT_EQ(d.overflow(), 2u);
  EXPECT_EQ(d.count(), 4u);
  // No bucket counts: everything was out of grid range.
  for (std::uint64_t b : d.buckets()) EXPECT_EQ(b, 0u);
}

TEST(QuantileDigestTest, MergeIsPermutationInvariant) {
  // Three shards with overlapping ranges; every merge order must yield a
  // bit-identical digest (integer adds + commutative min/max).
  std::vector<QuantileDigest> shards(3);
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> dist(1e-3, 1e6);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (int i = 0; i < 1000; ++i) shards[s].observe(dist(rng));
  }

  std::vector<std::size_t> order = {0, 1, 2};
  QuantileDigest reference;
  for (std::size_t s : order) reference.merge_from(shards[s]);
  while (std::next_permutation(order.begin(), order.end())) {
    QuantileDigest merged;
    for (std::size_t s : order) merged.merge_from(shards[s]);
    expect_same_state(reference, merged);
  }
}

TEST(QuantileDigestTest, MergeMatchesDirectObservation) {
  QuantileDigest direct, a, b;
  for (int i = 1; i <= 100; ++i) {
    const double v = static_cast<double>(i) * 0.37;
    direct.observe(v);
    (i % 2 == 0 ? a : b).observe(v);
  }
  QuantileDigest merged;
  merged.merge_from(a);
  merged.merge_from(b);
  expect_same_state(direct, merged);
}

TEST(QuantileDigestTest, MergeFromEmptyIsIdentity) {
  QuantileDigest d, empty;
  d.observe(2.0);
  d.observe(4.0);
  QuantileDigest copy_state;
  copy_state.merge_from(d);
  d.merge_from(empty);
  expect_same_state(d, copy_state);
}

}  // namespace
}  // namespace satin::obs
