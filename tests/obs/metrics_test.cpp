#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace satin::obs {
namespace {

TEST(CounterTest, IncrementsByOneAndDelta) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(HistogramTest, BucketsOnUpperBoundSemantics) {
  Histogram h({1.0, 10.0, 100.0});
  h.observe(0.5);    // <= 1      -> bucket 0
  h.observe(1.0);    // == bound  -> bucket 0 (le semantics)
  h.observe(1.0001); //           -> bucket 1
  h.observe(10.0);   //           -> bucket 1
  h.observe(99.0);   //           -> bucket 2
  h.observe(1000.0); //           -> overflow
  const auto& counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.moments().count(), 6u);
  EXPECT_DOUBLE_EQ(h.moments().min(), 0.5);
  EXPECT_DOUBLE_EQ(h.moments().max(), 1000.0);
}

TEST(HistogramTest, RejectsEmptyOrNonIncreasingBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
}

TEST(HistogramTest, DefaultTimeBucketsCoverPaperTimescales) {
  const auto bounds = Histogram::default_time_buckets();
  ASSERT_FALSE(bounds.empty());
  EXPECT_LE(bounds.front(), 1e-9);  // ns-scale hash steps
  EXPECT_GE(bounds.back(), 1e3);    // quarter-hour simulations
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

TEST(MetricsRegistryTest, LookupOrCreateReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.counter("sub.a");
  a.inc();
  reg.counter("sub.b").inc(5);  // may rebalance the map
  EXPECT_EQ(&reg.counter("sub.a"), &a);
  EXPECT_EQ(reg.counter("sub.a").value(), 1u);
  EXPECT_EQ(reg.find_counter("sub.b")->value(), 5u);
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
}

TEST(MetricsRegistryTest, HistogramRebindWithDifferentBucketsThrows) {
  MetricsRegistry reg;
  reg.histogram("h", {1.0, 2.0});
  EXPECT_NO_THROW(reg.histogram("h", {1.0, 2.0}));
  EXPECT_THROW(reg.histogram("h", {1.0, 3.0}), std::logic_error);
}

TEST(MetricsRegistryTest, SnapshotIsIdempotent) {
  MetricsRegistry reg;
  reg.counter("a.events").inc(3);
  reg.gauge("a.depth").set(2.5);
  reg.histogram("a.lat_s", {0.1, 1.0}).observe(0.05);
  const std::string first = reg.to_json();
  const std::string second = reg.to_json();
  EXPECT_EQ(first, second);  // reading a snapshot must not mutate state
  EXPECT_EQ(reg.counter("a.events").value(), 3u);
}

TEST(MetricsRegistryTest, SnapshotIndependentOfRegistrationOrder) {
  MetricsRegistry forward;
  forward.counter("x.one").inc();
  forward.counter("y.two").inc(2);
  forward.gauge("z.g").set(1.0);

  MetricsRegistry backward;
  backward.gauge("z.g").set(1.0);
  backward.counter("y.two").inc(2);
  backward.counter("x.one").inc();

  EXPECT_EQ(forward.to_json(), backward.to_json());
}

TEST(MetricsRegistryTest, SnapshotContainsAllSections) {
  MetricsRegistry reg;
  reg.counter("c.n").inc();
  reg.gauge("g.v").set(-3.5);
  reg.histogram("h.s", {1.0}).observe(2.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"c.n\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"g.v\": -3.5"), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"inf\""), std::string::npos);
}

TEST(MetricsRegistryTest, VolatileGaugesSkippedInStableSnapshot) {
  MetricsRegistry reg;
  reg.gauge("engine.wall_seconds").set(1.25);
  reg.gauge("engine.wall_seconds").mark_volatile();
  reg.gauge("engine.events_fired").set(42.0);
  const std::string full = reg.to_json(/*include_volatile=*/true);
  const std::string stable = reg.to_json(/*include_volatile=*/false);
  EXPECT_NE(full.find("engine.wall_seconds"), std::string::npos);
  EXPECT_EQ(stable.find("engine.wall_seconds"), std::string::npos);
  EXPECT_NE(stable.find("engine.events_fired"), std::string::npos);
}

TEST(MetricsRegistryTest, MergePropagatesVolatileFlag) {
  MetricsRegistry trial;
  trial.gauge("engine.wall_seconds").set(0.5);
  trial.gauge("engine.wall_seconds").mark_volatile();
  MetricsRegistry session;
  session.merge_from(trial);
  const std::string stable = session.to_json(/*include_volatile=*/false);
  EXPECT_EQ(stable.find("engine.wall_seconds"), std::string::npos);
}

TEST(MetricsRegistryTest, DigestSectionInSnapshot) {
  MetricsRegistry reg;
  reg.digest("scan.lat_s").observe(0.5);
  reg.digest("scan.lat_s").observe(2.0);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"digests\""), std::string::npos);
  EXPECT_NE(json.find("\"scan.lat_s\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
}

TEST(MetricsRegistryTest, MergeOrderPermutationsYieldIdenticalSnapshots) {
  // The cross-trial aggregation contract: merging per-trial registries in
  // ANY order must produce the same snapshot for counters, digest state
  // and histogram bucket counts. (Histogram Welford moments are only
  // guaranteed for a fixed order, which is why the runner merges in
  // submission order; the digest section has no such caveat.)
  std::vector<MetricsRegistry> trials(3);
  for (std::size_t t = 0; t < trials.size(); ++t) {
    trials[t].counter("satin.rounds").inc(10 * (t + 1));
    for (int i = 0; i < 50; ++i) {
      trials[t].digest("introspect.scan_s")
          .observe(1e-3 * static_cast<double>(i + 1) *
                   static_cast<double>(t + 1));
      trials[t].histogram("introspect.lat_s", {0.01, 0.1, 1.0})
          .observe(1e-2 * static_cast<double>(i % 7));
    }
  }

  std::vector<std::size_t> order = {0, 1, 2};
  MetricsRegistry reference;
  for (std::size_t t : order) reference.merge_from(trials[t]);
  while (std::next_permutation(order.begin(), order.end())) {
    MetricsRegistry merged;
    for (std::size_t t : order) merged.merge_from(trials[t]);
    EXPECT_EQ(merged.counter("satin.rounds").value(),
              reference.counter("satin.rounds").value());
    const QuantileDigest* d = merged.find_digest("introspect.scan_s");
    const QuantileDigest* ref_d = reference.find_digest("introspect.scan_s");
    ASSERT_NE(d, nullptr);
    ASSERT_NE(ref_d, nullptr);
    EXPECT_EQ(d->buckets(), ref_d->buckets());
    EXPECT_EQ(d->count(), ref_d->count());
    EXPECT_DOUBLE_EQ(d->min(), ref_d->min());
    EXPECT_DOUBLE_EQ(d->max(), ref_d->max());
    EXPECT_EQ(merged.find_histogram("introspect.lat_s")->counts(),
              reference.find_histogram("introspect.lat_s")->counts());
  }
}

TEST(MetricsMacroTest, MacrosNoOpWithoutRegistry) {
  install_metrics(nullptr);
  SATIN_METRIC_INC("m.a");
  SATIN_METRIC_ADD("m.b", 7);
  SATIN_METRIC_GAUGE_SET("m.c", 1.0);
  SATIN_METRIC_OBSERVE("m.d", 0.5);
  SATIN_METRIC_DIGEST_OBSERVE("m.e", 0.5);
  SUCCEED();
}

TEST(MetricsMacroTest, MacrosEmitIntoInstalledRegistry) {
  MetricsRegistry reg;
  install_metrics(&reg);
  SATIN_METRIC_INC("m.a");
  SATIN_METRIC_ADD("m.a", 9);
  SATIN_METRIC_GAUGE_SET("m.g", 4.25);
  SATIN_METRIC_OBSERVE("m.h", 0.5);
  SATIN_METRIC_DIGEST_OBSERVE("m.q", 0.25);
  install_metrics(nullptr);
  SATIN_METRIC_INC("m.a");  // after uninstall: must not land

#if SATIN_OBS_ENABLED
  EXPECT_EQ(reg.find_counter("m.a")->value(), 10u);
  EXPECT_DOUBLE_EQ(reg.find_gauge("m.g")->value(), 4.25);
  EXPECT_EQ(reg.find_histogram("m.h")->moments().count(), 1u);
  EXPECT_EQ(reg.find_digest("m.q")->count(), 1u);
#else
  EXPECT_EQ(reg.find_counter("m.a"), nullptr);
#endif
}

}  // namespace
}  // namespace satin::obs
