// Binary metrics snapshots ("SATNMET1"): the cross-process merge format
// the campaign runtime rides on. The invariant under test: save in one
// process, load_merge in another, and the merged registry snapshots
// byte-identically to an in-process merge — doubles as raw bits, Welford
// and digest state verbatim.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include <unistd.h>

#include "obs/metrics.h"

namespace satin::obs {
namespace {

std::string temp_path(const char* tag) {
  return testing::TempDir() + "/metrics_io_" + tag + ".met";
}

void populate(MetricsRegistry& registry) {
  registry.counter("c.events").inc(41);
  registry.counter("c.events").inc();
  registry.gauge("g.level").set(0.1 + 0.2);  // not representable in decimal
  Gauge& vol = registry.gauge("g.wall_s");
  vol.set(123.456);
  vol.mark_volatile();
  for (int i = 0; i < 1000; ++i) {
    registry.digest("d.lat").observe(1e-6 * i);
    registry.histogram("h.lat").observe(1e-6 * i);
  }
}

TEST(MetricsIo, SaveThenLoadIntoEmptyRegistryIsByteIdentical) {
  const std::string path = temp_path("roundtrip");
  MetricsRegistry original;
  populate(original);
  std::string error;
  ASSERT_TRUE(original.save_binary(path, &error)) << error;

  MetricsRegistry loaded;
  ASSERT_TRUE(loaded.load_merge_binary(path, &error)) << error;
  // Full snapshot, volatile gauges included: exact-state round trip.
  EXPECT_EQ(loaded.to_json(true), original.to_json(true));
  EXPECT_EQ(loaded.to_json(false), original.to_json(false));
  std::remove(path.c_str());
}

TEST(MetricsIo, LoadMergesInsteadOfReplacing) {
  const std::string path = temp_path("merge");
  MetricsRegistry original;
  populate(original);
  std::string error;
  ASSERT_TRUE(original.save_binary(path, &error)) << error;

  // Loading the same snapshot twice doubles the counters — and matches
  // an in-process merge of two identical registries.
  MetricsRegistry twice;
  ASSERT_TRUE(twice.load_merge_binary(path, &error)) << error;
  ASSERT_TRUE(twice.load_merge_binary(path, &error)) << error;

  MetricsRegistry a, b;
  populate(a);
  populate(b);
  a.merge_from(b);
  EXPECT_EQ(twice.to_json(true), a.to_json(true));
  std::remove(path.c_str());
}

TEST(MetricsIo, MissingFileFailsWithClearError) {
  MetricsRegistry registry;
  std::string error;
  EXPECT_FALSE(registry.load_merge_binary(temp_path("nope"), &error));
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

TEST(MetricsIo, CorruptFileNeverHalfApplies) {
  const std::string path = temp_path("corrupt");
  MetricsRegistry original;
  populate(original);
  std::string error;
  ASSERT_TRUE(original.save_binary(path, &error)) << error;

  // Truncate mid-body: parse must fail and the target stay untouched.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_GT(size, 40);

  for (const long keep : {0L, 7L, size / 2, size - 3}) {
    std::FILE* w = std::fopen(path.c_str(), "wb");
    ASSERT_NE(w, nullptr);
    std::fclose(w);
    // Re-save then truncate to `keep` bytes.
    ASSERT_TRUE(original.save_binary(path, &error)) << error;
    ASSERT_EQ(::truncate(path.c_str(), keep), 0);

    MetricsRegistry target;
    target.counter("pre.existing").inc(7);
    const std::string before = target.to_json(true);
    EXPECT_FALSE(target.load_merge_binary(path, &error)) << "keep=" << keep;
    EXPECT_EQ(target.to_json(true), before) << "keep=" << keep;
  }
  std::remove(path.c_str());
}

TEST(MetricsIo, BadMagicIsRejected) {
  const std::string path = temp_path("magic");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTAMETRICSFILE and then some filler bytes beyond", f);
  std::fclose(f);
  MetricsRegistry registry;
  std::string error;
  EXPECT_FALSE(registry.load_merge_binary(path, &error));
  EXPECT_NE(error.find("SATNMET1"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace satin::obs
