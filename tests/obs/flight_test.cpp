#include "obs/flight/recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/flight/audit.h"
#include "sim/time.h"

namespace satin::obs {
namespace {

std::string temp_path(const char* name) {
  return ::testing::TempDir() + name;
}

void record_n(FlightRecorder& rec, std::uint64_t n, std::uint64_t seq0 = 0) {
  for (std::uint64_t i = 0; i < n; ++i) {
    rec.record(FlightKind::kDispatch,
               sim::Time::from_ps(static_cast<std::int64_t>(1000 * (i + 1))),
               seq0 + i, /*actor=*/static_cast<int>(i % 4),
               /*payload=*/0xABC0 + i);
  }
}

TEST(FlightRecordTest, EncodeDecodeRoundTrip) {
  FlightRecord in;
  in.t_ps = -1234567890123;
  in.seq = 0xFEDCBA9876543210ull;
  in.payload = 0x0123456789ABCDEFull;
  in.kind = static_cast<std::uint16_t>(FlightKind::kScanEnd);
  in.actor = -1;
  unsigned char buf[kFlightRecordBytes];
  encode_flight_record(in, buf);
  const FlightRecord out = decode_flight_record(buf);
  EXPECT_EQ(in, out);
}

TEST(FlightRecorderTest, InMemoryRetainsCommitOrder) {
  FlightRecorder rec;
  record_n(rec, 5);
  EXPECT_EQ(rec.commits(), 5u);
  EXPECT_EQ(rec.dropped(), 0u);
  const auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 5u);
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, i);
    EXPECT_EQ(records[i].t_ps, static_cast<std::int64_t>(1000 * (i + 1)));
  }
}

TEST(FlightRecorderTest, RingKeepsNewestAndCountsDrops) {
  FlightRecorder::Options opts;
  opts.ring = 4;
  FlightRecorder rec(opts);
  record_n(rec, 10);
  EXPECT_TRUE(rec.ring_mode());
  EXPECT_EQ(rec.commits(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  const auto records = rec.snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first unwinding of the newest window: seq 6, 7, 8, 9.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(records[i].seq, 6 + i);
}

TEST(FlightRecorderTest, ChainHashCoversDroppedRecords) {
  // Two recorders see the same stream; only one retains all of it. The
  // chains must match anyway — the fold happens at commit, before drops.
  FlightRecorder full;
  FlightRecorder::Options opts;
  opts.ring = 2;
  FlightRecorder ring(opts);
  record_n(full, 8);
  record_n(ring, 8);
  EXPECT_EQ(full.chain_hash(), ring.chain_hash());
  // And the chain is order-sensitive: a reordered stream must not match.
  FlightRecorder swapped;
  swapped.record(FlightKind::kDispatch, sim::Time::from_ps(2000), 1, 1,
                 0xABC1);
  swapped.record(FlightKind::kDispatch, sim::Time::from_ps(1000), 0, 0,
                 0xABC0);
  record_n(swapped, 6, 2);
  EXPECT_NE(full.chain_hash(), swapped.chain_hash());
}

TEST(FlightRecorderTest, AppendFromPreservesOrderAndDrops) {
  FlightRecorder a, b, merged;
  record_n(a, 3, 0);
  record_n(b, 3, 100);
  merged.append_from(a);
  merged.append_from(b);
  EXPECT_EQ(merged.commits(), 6u);
  const auto records = merged.snapshot();
  ASSERT_EQ(records.size(), 6u);
  EXPECT_EQ(records[2].seq, 2u);
  EXPECT_EQ(records[3].seq, 100u);

  // Drop counts fold through the merge.
  FlightRecorder::Options opts;
  opts.ring = 2;
  FlightRecorder ringed(opts);
  record_n(ringed, 5);
  FlightRecorder sink;
  sink.append_from(ringed);
  EXPECT_EQ(sink.dropped(), 3u);
  EXPECT_EQ(sink.snapshot().size(), 2u);
}

TEST(FlightRecorderTest, SpillFileRoundTripsThroughReader) {
  const std::string path = temp_path("flight_spill.bin");
  {
    FlightRecorder::Options opts;
    opts.path = path;
    opts.spill_chunk = 8;  // force multiple spills
    FlightRecorder rec(opts);
    ASSERT_FALSE(rec.failed());
    record_n(rec, 100);
    EXPECT_TRUE(rec.close());
  }
  FlightLog log;
  std::string error;
  ASSERT_TRUE(read_flight_log(path, log, &error)) << error;
  EXPECT_TRUE(log.has_footer);
  EXPECT_FALSE(log.ring);
  EXPECT_EQ(log.commits, 100u);
  EXPECT_EQ(log.dropped, 0u);
  ASSERT_EQ(log.records.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(log.records[i].seq, i);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, RingFileKeepsTailWindow) {
  const std::string path = temp_path("flight_ring.bin");
  {
    FlightRecorder::Options opts;
    opts.path = path;
    opts.ring = 16;
    FlightRecorder rec(opts);
    record_n(rec, 64);
    EXPECT_TRUE(rec.close());
  }
  FlightLog log;
  ASSERT_TRUE(read_flight_log(path, log));
  EXPECT_TRUE(log.ring);
  EXPECT_EQ(log.commits, 64u);
  EXPECT_EQ(log.dropped, 48u);
  ASSERT_EQ(log.records.size(), 16u);
  EXPECT_EQ(log.records.front().seq, 48u);
  EXPECT_EQ(log.records.back().seq, 63u);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, CloseIsIdempotent) {
  const std::string path = temp_path("flight_idem.bin");
  FlightRecorder::Options opts;
  opts.path = path;
  FlightRecorder rec(opts);
  record_n(rec, 3);
  EXPECT_TRUE(rec.close());
  EXPECT_TRUE(rec.close());
  FlightLog log;
  ASSERT_TRUE(read_flight_log(path, log));
  EXPECT_EQ(log.records.size(), 3u);
  std::remove(path.c_str());
}

TEST(FlightRecorderTest, OpenFailureIsReportedNotFatal) {
  FlightRecorder::Options opts;
  opts.path = "/nonexistent-dir-zzz/flight.bin";
  FlightRecorder rec(opts);
  EXPECT_TRUE(rec.failed());
  record_n(rec, 2);  // still records in memory, must not crash
  EXPECT_EQ(rec.commits(), 2u);
}

TEST(FlightAuditTest, ReaderRejectsGarbageAndTornFiles) {
  const std::string path = temp_path("flight_bad.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a flight recording at all", f);
    std::fclose(f);
  }
  FlightLog log;
  std::string error;
  EXPECT_FALSE(read_flight_log(path, log, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(read_flight_log(temp_path("flight_missing_zzz.bin"), log));
  std::remove(path.c_str());
}

TEST(FlightAuditTest, ZeroLengthFileGetsADistinctDiagnostic) {
  const std::string path = temp_path("flight_empty.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  FlightLog log;
  std::string error;
  EXPECT_FALSE(read_flight_log(path, log, &error));
  // "empty file", not a generic magic complaint: the operator should see
  // at a glance that the recording never got written, vs got damaged.
  EXPECT_NE(error.find("empty file"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(FlightAuditTest, TruncatedHeaderReportsByteCount) {
  const std::string path = temp_path("flight_shorthdr.bin");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("SATNFLT", f);  // 7 bytes of a 32-byte header
    std::fclose(f);
  }
  FlightLog log;
  std::string error;
  EXPECT_FALSE(read_flight_log(path, log, &error));
  EXPECT_NE(error.find("truncated header"), std::string::npos) << error;
  EXPECT_NE(error.find("7"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(FlightAuditTest, ReplayFoldsRecordsAndDrops) {
  const std::string path = temp_path("flight_replay.bin");
  {
    FlightRecorder::Options opts;
    opts.path = path;
    opts.ring = 4;  // force drops so the footer carries a drop count
    FlightRecorder rec(opts);
    record_n(rec, 10);
    ASSERT_TRUE(rec.close());
  }
  FlightLog log;
  ASSERT_TRUE(read_flight_log(path, log));
  FlightRecorder out;
  replay_flight_log(log, out);
  EXPECT_EQ(out.commits(), log.records.size());
  EXPECT_EQ(out.dropped(), log.dropped);
  const auto replayed = out.snapshot();
  ASSERT_EQ(replayed.size(), log.records.size());
  for (std::size_t i = 0; i < replayed.size(); ++i) {
    EXPECT_EQ(replayed[i].t_ps, log.records[i].t_ps) << i;
    EXPECT_EQ(replayed[i].payload, log.records[i].payload) << i;
  }
  std::remove(path.c_str());
}

TEST(FlightAuditTest, MissingFooterIsToleratedAsTruncated) {
  const std::string full_path = temp_path("flight_full.bin");
  const std::string cut_path = temp_path("flight_cut.bin");
  {
    FlightRecorder::Options opts;
    opts.path = full_path;
    FlightRecorder rec(opts);
    record_n(rec, 10);
    ASSERT_TRUE(rec.close());
  }
  // Chop the footer record off, as a crashed run would.
  {
    std::FILE* in = std::fopen(full_path.c_str(), "rb");
    std::FILE* out = std::fopen(cut_path.c_str(), "wb");
    ASSERT_NE(in, nullptr);
    ASSERT_NE(out, nullptr);
    std::vector<unsigned char> buf(kFlightHeaderBytes +
                                   10 * kFlightRecordBytes);
    ASSERT_EQ(std::fread(buf.data(), 1, buf.size(), in), buf.size());
    ASSERT_EQ(std::fwrite(buf.data(), 1, buf.size(), out), buf.size());
    std::fclose(in);
    std::fclose(out);
  }
  FlightLog log;
  ASSERT_TRUE(read_flight_log(cut_path, log));
  EXPECT_FALSE(log.has_footer);
  EXPECT_EQ(log.records.size(), 10u);
  std::remove(full_path.c_str());
  std::remove(cut_path.c_str());
}

TEST(FlightAuditTest, StatsCountPerKindAndSpan) {
  FlightRecorder rec;
  rec.record(FlightKind::kWorldEnter, sim::Time::from_ps(100), 0, 2, 0);
  rec.record(FlightKind::kDispatch, sim::Time::from_ps(200), 1, -1, 0);
  rec.record(FlightKind::kDispatch, sim::Time::from_ps(300), 2, -1, 0);
  rec.record(FlightKind::kAlarm, sim::Time::from_ps(400), 0, 2, 5);
  FlightLog log;
  log.records = rec.snapshot();
  const FlightStats stats = compute_flight_stats(log);
  EXPECT_EQ(stats.total, 4u);
  EXPECT_EQ(stats.by_kind[static_cast<std::size_t>(FlightKind::kDispatch)],
            2u);
  EXPECT_EQ(stats.by_kind[static_cast<std::size_t>(FlightKind::kAlarm)], 1u);
  EXPECT_EQ(stats.first_t_ps, 100);
  EXPECT_EQ(stats.last_t_ps, 400);
}

// Builds a FlightLog as if read back from a closed recorder.
FlightLog log_of(const FlightRecorder& rec, bool ring = false) {
  FlightLog log;
  log.records = rec.snapshot();
  log.commits = rec.commits();
  log.dropped = rec.dropped();
  log.chain_hash = rec.chain_hash();
  log.ring = ring;
  log.has_footer = true;
  return log;
}

TEST(FlightAuditTest, DiffReportsIdenticalStreams) {
  FlightRecorder a, b;
  record_n(a, 20);
  record_n(b, 20);
  const auto result = diff_flight_logs(log_of(a), log_of(b));
  EXPECT_FALSE(result.diverged);
  EXPECT_NE(result.report.find("identical"), std::string::npos);
}

TEST(FlightAuditTest, DiffLocatesFirstDivergingRecord) {
  FlightRecorder a, b;
  record_n(a, 20);
  record_n(b, 7);
  b.record(FlightKind::kDispatch, sim::Time::from_ps(999999), 7, 0,
           0xDEAD);  // diverges at index 7
  record_n(b, 12, 8);
  const auto result = diff_flight_logs(log_of(a), log_of(b), /*context=*/2);
  EXPECT_TRUE(result.diverged);
  EXPECT_EQ(result.first_index, 7u);
  EXPECT_NE(result.report.find("first divergence"), std::string::npos);
  // Context from both streams around the divergent record.
  EXPECT_NE(result.report.find("0xdead"), std::string::npos);
}

TEST(FlightAuditTest, DiffFlagsPrefixTruncation) {
  FlightRecorder a, b;
  record_n(a, 10);
  record_n(b, 6);
  const auto result = diff_flight_logs(log_of(a), log_of(b));
  EXPECT_TRUE(result.diverged);
  EXPECT_EQ(result.first_index, 6u);
}

TEST(FlightAuditTest, DiffCatchesChainMismatchBehindEqualRingWindows) {
  // Ring recordings can retain identical tail windows while the dropped
  // prefixes differed; the chain hash (folded over every commit) is the
  // only witness, and diff must believe it.
  FlightRecorder::Options opts;
  opts.ring = 4;
  FlightRecorder a(opts), b(opts);
  a.record(FlightKind::kNote, sim::Time::from_ps(1), 0, 0, 0x1);
  b.record(FlightKind::kNote, sim::Time::from_ps(1), 0, 0, 0x2);  // differs
  record_n(a, 8, 10);
  record_n(b, 8, 10);
  EXPECT_EQ(log_of(a, true).records, log_of(b, true).records);
  const auto result = diff_flight_logs(log_of(a, true), log_of(b, true));
  EXPECT_TRUE(result.diverged);
  EXPECT_NE(result.report.find("chain"), std::string::npos);
}

}  // namespace
}  // namespace satin::obs
