#include "obs/session.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "obs/flight/audit.h"
#include "sim/engine.h"

namespace satin::obs {
namespace {

// Builds a mutable argv; keeps the backing strings alive.
struct Argv {
  explicit Argv(std::vector<std::string> args) : strings(std::move(args)) {
    for (auto& s : strings) ptrs.push_back(s.data());
    ptrs.push_back(nullptr);
    argc = static_cast<int>(strings.size());
  }
  std::vector<std::string> strings;
  std::vector<char*> ptrs;
  int argc = 0;
};

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(ObsSessionTest, NoFlagsInstallsNothing) {
  Argv argv({"prog", "-v"});
  ObsSession session(argv.argc, argv.ptrs.data());
  EXPECT_FALSE(session.trace_enabled());
  EXPECT_FALSE(session.metrics_enabled());
  EXPECT_EQ(argv.argc, 2);
  EXPECT_EQ(tracer(), nullptr);
  EXPECT_EQ(metrics(), nullptr);
}

TEST(ObsSessionTest, StripsFlagsAndDerivesMetricsPath) {
  const std::string trace = testing::TempDir() + "session_strip.trace.json";
  Argv argv({"prog", "--trace=" + trace, "-v"});
  {
    ObsSession session(argv.argc, argv.ptrs.data());
    EXPECT_TRUE(session.trace_enabled());
    EXPECT_TRUE(session.metrics_enabled());
    EXPECT_EQ(session.trace_path(), trace);
    EXPECT_EQ(session.metrics_path(), trace + ".metrics.json");
    // The obs flags are gone; the program's own flags survive in order.
    ASSERT_EQ(argv.argc, 2);
    EXPECT_STREQ(argv.ptrs[0], "prog");
    EXPECT_STREQ(argv.ptrs[1], "-v");
    EXPECT_NE(tracer(), nullptr);
    EXPECT_NE(metrics(), nullptr);
  }
  // Destructor flushed the files and uninstalled the globals.
  EXPECT_EQ(tracer(), nullptr);
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_NE(slurp(trace).find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(slurp(trace + ".metrics.json").find("\"counters\""),
            std::string::npos);
}

TEST(ObsSessionTest, FlushWithEngineAddsSelfMetrics) {
  const std::string trace = testing::TempDir() + "session_engine.trace.json";
  Argv argv({"prog", "--trace=" + trace});
  sim::Engine engine;
  engine.schedule_at(sim::Time::from_ms(1), [] {});
  engine.run_all();
  ObsSession session(argv.argc, argv.ptrs.data());
  EXPECT_TRUE(session.flush(&engine));
  const std::string metrics_json = slurp(session.metrics_path());
  EXPECT_NE(metrics_json.find("engine.events_fired"), std::string::npos);
  EXPECT_NE(metrics_json.find("engine.wall_s_per_sim_s"), std::string::npos);
}

TEST(ObsSessionTest, FlightFlagRecordsEngineCommits) {
  const std::string path = testing::TempDir() + "session_flight.bin";
  Argv argv({"prog", "--flight=" + path, "-k"});
  sim::Engine engine;
  {
    ObsSession session(argv.argc, argv.ptrs.data());
#if SATIN_OBS_ENABLED
    ASSERT_TRUE(session.flight_enabled());
    EXPECT_EQ(session.flight_path(), path);
    EXPECT_EQ(session.flight_ring(), 0u);
    EXPECT_EQ(flight(), session.flight_recorder());
#endif
    ASSERT_EQ(argv.argc, 2);
    EXPECT_STREQ(argv.ptrs[1], "-k");
    for (int i = 1; i <= 5; ++i) {
      engine.schedule_at(sim::Time::from_ms(i), [] {});
    }
    engine.run_all();
    EXPECT_TRUE(session.flush(&engine));
  }
  EXPECT_EQ(flight(), nullptr);
#if SATIN_OBS_ENABLED
  {
    FlightLog log;
    ASSERT_TRUE(read_flight_log(path, log));
    EXPECT_TRUE(log.has_footer);
    EXPECT_EQ(log.commits, 5u);
    for (const FlightRecord& r : log.records) {
      EXPECT_EQ(r.kind, static_cast<std::uint16_t>(FlightKind::kDispatch));
    }
  }
#endif
  std::remove(path.c_str());
}

TEST(ObsSessionTest, FlightRingSpecParsed) {
  const std::string path = testing::TempDir() + "session_flight_ring.bin";
  Argv argv({"prog", "--flight=" + path + ",ring=128"});
  ObsSession session(argv.argc, argv.ptrs.data());
#if SATIN_OBS_ENABLED
  EXPECT_TRUE(session.flight_enabled());
  EXPECT_EQ(session.flight_path(), path);
  EXPECT_EQ(session.flight_ring(), 128u);
  EXPECT_TRUE(session.flight_recorder()->ring_mode());
#endif
  session.flush();
  std::remove(path.c_str());
}

TEST(ObsSessionTest, MetricsStableDropsVolatileGauges) {
  const std::string with_wall = testing::TempDir() + "session_vol.json";
  const std::string stable = testing::TempDir() + "session_stable.json";
  sim::Engine engine;
  engine.schedule_at(sim::Time::from_ms(1), [] {});
  engine.run_all();
  {
    Argv argv({"prog", "--metrics=" + with_wall});
    ObsSession session(argv.argc, argv.ptrs.data());
    EXPECT_FALSE(session.metrics_stable());
    session.flush(&engine);
  }
  {
    Argv argv({"prog", "--metrics=" + stable, "--metrics-stable"});
    ObsSession session(argv.argc, argv.ptrs.data());
    EXPECT_TRUE(session.metrics_stable());
    EXPECT_EQ(argv.argc, 1);  // the bare switch is stripped too
    session.flush(&engine);
  }
  const std::string full_json = slurp(with_wall);
  const std::string stable_json = slurp(stable);
  EXPECT_NE(full_json.find("engine.wall_seconds"), std::string::npos);
  EXPECT_EQ(stable_json.find("engine.wall_seconds"), std::string::npos);
  EXPECT_EQ(stable_json.find("engine.pool_high_water"), std::string::npos);
  EXPECT_NE(stable_json.find("engine.events_fired"), std::string::npos);
  std::remove(with_wall.c_str());
  std::remove(stable.c_str());
}

TEST(ObsSessionTest, BatchFlagParsedAndStripped) {
  {
    Argv argv({"prog", "--batch=8", "-x"});
    ObsSession session(argv.argc, argv.ptrs.data());
    EXPECT_TRUE(session.batch_requested());
    EXPECT_EQ(session.batch(), 8);
    EXPECT_EQ(session.batch(3), 8);
    // The flag is stripped; nothing else is installed for it.
    ASSERT_EQ(argv.argc, 2);
    EXPECT_STREQ(argv.ptrs[1], "-x");
    EXPECT_FALSE(session.trace_enabled());
    EXPECT_FALSE(session.metrics_enabled());
  }
  {
    Argv argv({"prog"});
    ObsSession session(argv.argc, argv.ptrs.data());
    EXPECT_FALSE(session.batch_requested());
    EXPECT_EQ(session.batch(), 1);
    EXPECT_EQ(session.batch(4), 4);
  }
  {
    // Nonsense values behave as if the flag were absent.
    Argv argv({"prog", "--batch=0"});
    ObsSession session(argv.argc, argv.ptrs.data());
    EXPECT_FALSE(session.batch_requested());
    EXPECT_EQ(session.batch(), 1);
  }
  {
    Argv argv({"prog", "--batch=-3"});
    ObsSession session(argv.argc, argv.ptrs.data());
    EXPECT_FALSE(session.batch_requested());
    EXPECT_EQ(session.batch(7), 7);
  }
}

TEST(ObsSessionTest, MetricsOnlyRunWritesNoTrace) {
  const std::string path = testing::TempDir() + "session_only.metrics.json";
  Argv argv({"prog", "--metrics=" + path});
  {
    ObsSession session(argv.argc, argv.ptrs.data());
    EXPECT_FALSE(session.trace_enabled());
    EXPECT_TRUE(session.metrics_enabled());
  }
  EXPECT_NE(slurp(path).find("\"gauges\""), std::string::npos);
}

}  // namespace
}  // namespace satin::obs
