#include "obs/session.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace satin::obs {
namespace {

// Builds a mutable argv; keeps the backing strings alive.
struct Argv {
  explicit Argv(std::vector<std::string> args) : strings(std::move(args)) {
    for (auto& s : strings) ptrs.push_back(s.data());
    ptrs.push_back(nullptr);
    argc = static_cast<int>(strings.size());
  }
  std::vector<std::string> strings;
  std::vector<char*> ptrs;
  int argc = 0;
};

std::string slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return "";
  std::string out;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

TEST(ObsSessionTest, NoFlagsInstallsNothing) {
  Argv argv({"prog", "-v"});
  ObsSession session(argv.argc, argv.ptrs.data());
  EXPECT_FALSE(session.trace_enabled());
  EXPECT_FALSE(session.metrics_enabled());
  EXPECT_EQ(argv.argc, 2);
  EXPECT_EQ(tracer(), nullptr);
  EXPECT_EQ(metrics(), nullptr);
}

TEST(ObsSessionTest, StripsFlagsAndDerivesMetricsPath) {
  const std::string trace = testing::TempDir() + "session_strip.trace.json";
  Argv argv({"prog", "--trace=" + trace, "-v"});
  {
    ObsSession session(argv.argc, argv.ptrs.data());
    EXPECT_TRUE(session.trace_enabled());
    EXPECT_TRUE(session.metrics_enabled());
    EXPECT_EQ(session.trace_path(), trace);
    EXPECT_EQ(session.metrics_path(), trace + ".metrics.json");
    // The obs flags are gone; the program's own flags survive in order.
    ASSERT_EQ(argv.argc, 2);
    EXPECT_STREQ(argv.ptrs[0], "prog");
    EXPECT_STREQ(argv.ptrs[1], "-v");
    EXPECT_NE(tracer(), nullptr);
    EXPECT_NE(metrics(), nullptr);
  }
  // Destructor flushed the files and uninstalled the globals.
  EXPECT_EQ(tracer(), nullptr);
  EXPECT_EQ(metrics(), nullptr);
  EXPECT_NE(slurp(trace).find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(slurp(trace + ".metrics.json").find("\"counters\""),
            std::string::npos);
}

TEST(ObsSessionTest, FlushWithEngineAddsSelfMetrics) {
  const std::string trace = testing::TempDir() + "session_engine.trace.json";
  Argv argv({"prog", "--trace=" + trace});
  sim::Engine engine;
  engine.schedule_at(sim::Time::from_ms(1), [] {});
  engine.run_all();
  ObsSession session(argv.argc, argv.ptrs.data());
  EXPECT_TRUE(session.flush(&engine));
  const std::string metrics_json = slurp(session.metrics_path());
  EXPECT_NE(metrics_json.find("engine.events_fired"), std::string::npos);
  EXPECT_NE(metrics_json.find("engine.wall_s_per_sim_s"), std::string::npos);
}

TEST(ObsSessionTest, MetricsOnlyRunWritesNoTrace) {
  const std::string path = testing::TempDir() + "session_only.metrics.json";
  Argv argv({"prog", "--metrics=" + path});
  {
    ObsSession session(argv.argc, argv.ptrs.data());
    EXPECT_FALSE(session.trace_enabled());
    EXPECT_TRUE(session.metrics_enabled());
  }
  EXPECT_NE(slurp(path).find("\"gauges\""), std::string::npos);
}

}  // namespace
}  // namespace satin::obs
