// Calibration checks: every sampler reproduces the min/avg/max the paper
// measured (Table I, §IV-B1, §IV-B2) within tight tolerance.
#include "hw/timing_params.h"

#include <gtest/gtest.h>

#include "sim/stats.h"

namespace satin::hw {
namespace {

struct SpecCase {
  const char* name;
  JitterSpec spec;
};

class JitterSpecCalibration : public ::testing::TestWithParam<SpecCase> {};

TEST_P(JitterSpecCalibration, ReproducesPaperStatistics) {
  const JitterSpec& spec = GetParam().spec;
  sim::Rng rng(2024);
  sim::Accumulator acc;
  for (int i = 0; i < 20000; ++i) acc.add(spec.sample_seconds(rng));
  // Hard bounds: never outside the observed range.
  EXPECT_GE(acc.min(), spec.min_s);
  EXPECT_LE(acc.max(), spec.max_s);
  // Long-run mean within 2% of the reported average.
  EXPECT_NEAR(acc.mean(), spec.avg_s, 0.02 * spec.avg_s);
  // The tail actually reaches toward the observed maximum.
  EXPECT_GT(acc.max(), spec.avg_s + 0.5 * (spec.max_s - spec.avg_s));
}

INSTANTIATE_TEST_SUITE_P(
    Table1AndRecovery, JitterSpecCalibration,
    ::testing::Values(
        SpecCase{"hash_a53", TimingParams{}.hash_per_byte_a53},
        SpecCase{"hash_a57", TimingParams{}.hash_per_byte_a57},
        SpecCase{"snapshot_a53", TimingParams{}.snapshot_per_byte_a53},
        SpecCase{"snapshot_a57", TimingParams{}.snapshot_per_byte_a57},
        SpecCase{"recover_a53", TimingParams{}.recover_a53},
        SpecCase{"recover_a57", TimingParams{}.recover_a57},
        SpecCase{"rt_wakeup", TimingParams{}.rt_wakeup_latency},
        SpecCase{"cfs_idle", TimingParams{}.cfs_wakeup_latency_idle},
        SpecCase{"cfs_busy", TimingParams{}.cfs_wakeup_latency_busy}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(JitterSpec, DegenerateRangeReturnsAverage) {
  JitterSpec spec{1e-3, 1e-3, 1e-3};
  sim::Rng rng(1);
  EXPECT_DOUBLE_EQ(spec.sample_seconds(rng), 1e-3);
}

TEST(TimingParams, SwitchSampleWithinPaperRange) {
  // §IV-B1: Ts_switch in [2.38e-6, 3.60e-6] s on both core types.
  TimingParams timing;
  sim::Rng rng(7);
  sim::Accumulator acc;
  for (int i = 0; i < 5000; ++i) acc.add(timing.sample_switch(rng).sec());
  EXPECT_GE(acc.min(), 2.38e-6);
  EXPECT_LE(acc.max(), 3.60e-6);
  EXPECT_NEAR(acc.mean(), (2.38e-6 + 3.60e-6) / 2, 0.05e-6);
}

TEST(TimingParams, CoreTypeSelectorsMatchTable1) {
  TimingParams timing;
  EXPECT_DOUBLE_EQ(timing.hash_per_byte(CoreType::kLittleA53).avg_s, 1.07e-8);
  EXPECT_DOUBLE_EQ(timing.hash_per_byte(CoreType::kBigA57).avg_s, 6.71e-9);
  EXPECT_DOUBLE_EQ(timing.snapshot_per_byte(CoreType::kLittleA53).avg_s,
                   1.08e-8);
  EXPECT_DOUBLE_EQ(timing.snapshot_per_byte(CoreType::kBigA57).avg_s,
                   6.75e-9);
  EXPECT_DOUBLE_EQ(timing.recover(CoreType::kLittleA53).avg_s, 5.80e-3);
  EXPECT_DOUBLE_EQ(timing.recover(CoreType::kBigA57).avg_s, 4.96e-3);
}

TEST(TimingParams, A57BeatsA53) {
  // Table I's structural finding: the big core introspects faster.
  TimingParams timing;
  EXPECT_LT(timing.hash_per_byte_a57.avg_s, timing.hash_per_byte_a53.avg_s);
  EXPECT_LT(timing.snapshot_per_byte_a57.avg_s,
            timing.snapshot_per_byte_a53.avg_s);
}

TEST(TimingParams, DirectHashNoSlowerThanSnapshot) {
  // §IV-B1: "directly hashing the kernel's memory is more efficient than
  // capturing and hashing the snapshot."
  TimingParams timing;
  EXPECT_LE(timing.hash_per_byte_a53.avg_s, timing.snapshot_per_byte_a53.avg_s);
  EXPECT_LE(timing.hash_per_byte_a57.avg_s, timing.snapshot_per_byte_a57.avg_s);
}

TEST(CrossCoreDelayModel, MagnitudeScaleMatchesSingleCoreObservation) {
  // §IV-B2: probing a single core sees ~1/4 of the all-core thresholds.
  CrossCoreDelayModel model;
  EXPECT_DOUBLE_EQ(model.magnitude_scale(6), 1.0);
  EXPECT_DOUBLE_EQ(model.magnitude_scale(1), 0.25);
  EXPECT_GT(model.magnitude_scale(4), model.magnitude_scale(2));
  // Clamped outside [1, 6].
  EXPECT_DOUBLE_EQ(model.magnitude_scale(0), 0.25);
  EXPECT_DOUBLE_EQ(model.magnitude_scale(9), 1.0);
}

TEST(CrossCoreDelayModel, BaseSamplesWithinScaledBounds) {
  CrossCoreDelayModel model;
  sim::Rng rng(5);
  for (int cores : {1, 6}) {
    const double s = model.magnitude_scale(cores);
    for (int i = 0; i < 2000; ++i) {
      const double x = model.sample_base_seconds(rng, cores);
      EXPECT_GE(x, model.base_min_s * s);
      EXPECT_LE(x, model.base_max_s * s);
    }
  }
}

TEST(CrossCoreDelayModel, SpikesBoundedByObservedMaximum) {
  CrossCoreDelayModel model;
  sim::Rng rng(6);
  for (int i = 0; i < 20000; ++i) {
    const double x = model.sample_spike_seconds(rng, 6);
    EXPECT_GE(x, model.spike_min_s);
    EXPECT_LE(x, model.spike_max_s);  // Table II max: 1.77e-3 s
  }
}

TEST(CrossCoreDelayModel, WorstCaseThresholdIsPapersRoundedValue) {
  EXPECT_DOUBLE_EQ(CrossCoreDelayModel{}.worst_case_threshold_s, 1.8e-3);
}

}  // namespace
}  // namespace satin::hw
