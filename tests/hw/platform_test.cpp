// Cores, worlds, timers, GIC routing and the secure monitor, exercised on
// the assembled platform.
#include "hw/platform.h"

#include <gtest/gtest.h>

namespace satin::hw {
namespace {

TEST(Platform, JunoTopologyByDefault) {
  Platform p;
  EXPECT_EQ(p.num_cores(), 6);
  EXPECT_EQ(p.cores_of_type(CoreType::kLittleA53),
            (std::vector<CoreId>{0, 1, 2, 3}));
  EXPECT_EQ(p.cores_of_type(CoreType::kBigA57), (std::vector<CoreId>{4, 5}));
  EXPECT_EQ(p.core(0).name(), "core0(A53)");
  EXPECT_EQ(p.core(5).name(), "core5(A57)");
}

TEST(Platform, CustomTopology) {
  PlatformConfig config;
  config.num_little = 2;
  config.num_big = 1;
  Platform p(config);
  EXPECT_EQ(p.num_cores(), 3);
  EXPECT_EQ(p.core(2).type(), CoreType::kBigA57);
}

TEST(Platform, RejectsZeroCores) {
  PlatformConfig config;
  config.num_little = 0;
  config.num_big = 0;
  EXPECT_THROW(Platform p(config), std::invalid_argument);
}

TEST(Platform, AllCoresBootInNormalWorld) {
  Platform p;
  for (int c = 0; c < p.num_cores(); ++c) {
    EXPECT_EQ(p.core(c).world(), World::kNormal);
    EXPECT_EQ(p.core(c).secure_entries(), 0u);
  }
}

class WorldRecorder : public WorldListener {
 public:
  void on_secure_entry(CoreId core, sim::Time when) override {
    entries.emplace_back(core, when);
  }
  void on_secure_exit(CoreId core, sim::Time when) override {
    exits.emplace_back(core, when);
  }
  std::vector<std::pair<CoreId, sim::Time>> entries;
  std::vector<std::pair<CoreId, sim::Time>> exits;
};

TEST(SecureMonitor, TimerInterruptDrivesFullRoundTrip) {
  Platform p;
  WorldRecorder rec;
  p.core(2).add_world_listener(&rec);

  bool payload_ran = false;
  sim::Time handler_start;
  p.monitor().set_secure_timer_payload(
      [&](std::shared_ptr<SecureSession> session) {
        payload_ran = true;
        handler_start = session->handler_start();
        EXPECT_EQ(session->core_id(), 2);
        EXPECT_EQ(session->core_type(), CoreType::kLittleA53);
        EXPECT_TRUE(p.core(2).in_secure_world());
        // Busy for 1 ms of secure work.
        p.engine().schedule_after(sim::Duration::from_ms(1),
                                  [session] { session->complete(); });
      });

  p.timer().program_secure(2, sim::Time::from_ms(10));
  p.engine().run_until(sim::Time::from_ms(20));

  EXPECT_TRUE(payload_ran);
  ASSERT_EQ(rec.entries.size(), 1u);
  ASSERT_EQ(rec.exits.size(), 1u);
  EXPECT_EQ(rec.entries[0].second, sim::Time::from_ms(10));
  // Entry -> handler after Ts_switch in [2.38, 3.60] us.
  const double switch_in = (handler_start - rec.entries[0].second).sec();
  EXPECT_GE(switch_in, 2.38e-6);
  EXPECT_LE(switch_in, 3.60e-6);
  // Exit after handler end + another switch.
  const double total = (rec.exits[0].second - rec.entries[0].second).sec();
  EXPECT_GT(total, 1.0e-3 + 2 * 2.38e-6);
  EXPECT_LT(total, 1.0e-3 + 2 * 3.60e-6 + 1e-9);
  EXPECT_FALSE(p.core(2).in_secure_world());
  // Occupancy accounting.
  EXPECT_EQ(p.core(2).secure_entries(), 1u);
  EXPECT_NEAR(p.core(2).secure_time_total().sec(), total, 1e-12);
  p.core(2).remove_world_listener(&rec);
}

TEST(SecureMonitor, NoPayloadMeansEnterAndLeave) {
  Platform p;
  p.timer().program_secure(0, sim::Time::from_ms(1));
  p.engine().run_until(sim::Time::from_ms(2));
  EXPECT_EQ(p.core(0).secure_entries(), 1u);
  EXPECT_FALSE(p.core(0).in_secure_world());
  const double stay = p.core(0).secure_time_total().sec();
  EXPECT_GE(stay, 2 * 2.38e-6);
  EXPECT_LE(stay, 2 * 3.60e-6);
}

TEST(SecureMonitor, IndependentCoresEnterIndependently) {
  // §II: "the ARM multi-core architecture allows each core to enter its
  // secure world independently".
  Platform p;
  p.monitor().set_secure_timer_payload(
      [&](std::shared_ptr<SecureSession> session) {
        p.engine().schedule_after(sim::Duration::from_ms(5),
                                  [session] { session->complete(); });
      });
  p.timer().program_secure(1, sim::Time::from_ms(1));
  p.timer().program_secure(4, sim::Time::from_ms(2));
  p.engine().run_until(sim::Time::from_ms(3));
  EXPECT_TRUE(p.core(1).in_secure_world());
  EXPECT_TRUE(p.core(4).in_secure_world());
  EXPECT_FALSE(p.core(0).in_secure_world());
  p.engine().run_until(sim::Time::from_ms(10));
  EXPECT_FALSE(p.core(1).in_secure_world());
  EXPECT_FALSE(p.core(4).in_secure_world());
}

TEST(GenericTimer, ReprogramReplacesPendingExpiry) {
  Platform p;
  int fired = 0;
  p.monitor().set_secure_timer_payload(
      [&](std::shared_ptr<SecureSession> session) {
        ++fired;
        session->complete();
      });
  p.timer().program_secure(0, sim::Time::from_ms(5));
  p.timer().program_secure(0, sim::Time::from_ms(9));
  p.engine().run_until(sim::Time::from_ms(7));
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(p.timer().secure_enabled(0));
  EXPECT_EQ(p.timer().secure_compare_value(0), sim::Time::from_ms(9));
  p.engine().run_until(sim::Time::from_ms(10));
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(p.timer().secure_enabled(0));
}

TEST(GenericTimer, StopDisablesExpiry) {
  Platform p;
  int fired = 0;
  p.monitor().set_secure_timer_payload(
      [&](std::shared_ptr<SecureSession> session) {
        ++fired;
        session->complete();
      });
  p.timer().program_secure(3, sim::Time::from_ms(5));
  p.timer().stop_secure(3);
  p.engine().run_until(sim::Time::from_ms(10));
  EXPECT_EQ(fired, 0);
}

TEST(GenericTimer, PastCompareValueFiresImmediately) {
  Platform p;
  p.engine().run_until(sim::Time::from_ms(10));
  int fired = 0;
  p.monitor().set_secure_timer_payload(
      [&](std::shared_ptr<SecureSession> session) {
        ++fired;
        session->complete();
      });
  p.timer().program_secure(0, sim::Time::from_ms(2));  // already past
  p.engine().run_until(sim::Time::from_ms(10) + sim::Duration::from_us(100));
  EXPECT_EQ(fired, 1);
}

TEST(GenericTimer, CounterIsSharedSimTime) {
  Platform p;
  p.engine().run_until(sim::Time::from_ms(42));
  EXPECT_EQ(p.timer().counter(), sim::Time::from_ms(42));
}

TEST(Gic, NonSecureIrqPendsAcrossSecureStay) {
  // §V-B: with SCR_EL3.IRQ = 0 the introspection is non-preemptive; the
  // normal-world interrupt is delivered only after the world switch back.
  Platform p;
  std::vector<sim::Time> deliveries;
  p.gic().set_nonsecure_handler([&](CoreId core, IrqId irq) {
    EXPECT_EQ(core, 0);
    EXPECT_EQ(irq, IrqId::kNonSecurePhysTimer);
    deliveries.push_back(p.engine().now());
  });
  p.monitor().set_secure_timer_payload(
      [&](std::shared_ptr<SecureSession> session) {
        p.engine().schedule_after(sim::Duration::from_ms(2),
                                  [session] { session->complete(); });
      });
  p.timer().program_secure(0, sim::Time::from_ms(1));
  // NS tick lands mid-stay.
  p.timer().program_nonsecure(0, sim::Time::from_ms(2));
  p.engine().run_until(sim::Time::from_ms(1) + sim::Duration::from_ms(1) +
                       sim::Duration::from_us(500));
  EXPECT_TRUE(p.gic().is_pending(0, IrqId::kNonSecurePhysTimer));
  EXPECT_TRUE(deliveries.empty());
  p.engine().run_until(sim::Time::from_ms(10));
  ASSERT_EQ(deliveries.size(), 1u);
  // Delivered at the secure exit moment, not at its raise time.
  EXPECT_GT(deliveries[0], sim::Time::from_ms(3));
  EXPECT_FALSE(p.gic().is_pending(0, IrqId::kNonSecurePhysTimer));
}

TEST(Gic, NonSecureIrqDeliveredImmediatelyInNormalWorld) {
  Platform p;
  int delivered = 0;
  p.gic().set_nonsecure_handler([&](CoreId, IrqId) { ++delivered; });
  p.timer().program_nonsecure(2, sim::Time::from_ms(1));
  p.engine().run_until(sim::Time::from_ms(2));
  EXPECT_EQ(delivered, 1);
}

TEST(Gic, SecureIrqWhileSecurePendsUntilExit) {
  Platform p;
  std::vector<sim::Time> sessions;
  p.monitor().set_secure_timer_payload(
      [&](std::shared_ptr<SecureSession> session) {
        sessions.push_back(session->entry_time());
        p.engine().schedule_after(sim::Duration::from_ms(2),
                                  [session] { session->complete(); });
      });
  p.timer().program_secure(0, sim::Time::from_ms(1));
  p.engine().run_until(sim::Time::from_ms(1) + sim::Duration::from_us(100));
  ASSERT_EQ(sessions.size(), 1u);
  // Raise another secure timer IRQ while the core is still secure.
  p.timer().program_secure(0, sim::Time::from_ms(2));
  p.engine().run_until(sim::Time::from_ms(2) + sim::Duration::from_us(100));
  EXPECT_EQ(sessions.size(), 1u);  // pended, not re-entered
  p.engine().run_until(sim::Time::from_ms(20));
  EXPECT_EQ(sessions.size(), 2u);  // served after the exit
}

TEST(Gic, PendingCollapsesRepeatedRaises) {
  Platform p;
  int delivered = 0;
  p.gic().set_nonsecure_handler([&](CoreId, IrqId) { ++delivered; });
  p.monitor().set_secure_timer_payload(
      [&](std::shared_ptr<SecureSession> session) {
        p.engine().schedule_after(sim::Duration::from_ms(5),
                                  [session] { session->complete(); });
      });
  p.timer().program_secure(0, sim::Time::from_ms(1));
  p.engine().run_until(sim::Time::from_ms(2));
  p.gic().raise(0, IrqId::kNonSecurePhysTimer);
  p.gic().raise(0, IrqId::kNonSecurePhysTimer);
  p.gic().raise(0, IrqId::kNonSecurePhysTimer);
  EXPECT_EQ(p.gic().pending_count(0), 1u);
  p.engine().run_until(sim::Time::from_ms(20));
  EXPECT_EQ(delivered, 1);
}

TEST(Gic, DefaultGroupIsNonSecure) {
  Platform p;
  EXPECT_EQ(p.gic().group_of(IrqId::kSoftwareGenerated), IrqGroup::kNonSecure);
  EXPECT_EQ(p.gic().group_of(IrqId::kSecurePhysTimer), IrqGroup::kSecure);
}

TEST(Core, ListenerRemoveStopsNotifications) {
  Platform p;
  WorldRecorder rec;
  p.core(0).add_world_listener(&rec);
  p.core(0).remove_world_listener(&rec);
  p.timer().program_secure(0, sim::Time::from_ms(1));
  p.engine().run_until(sim::Time::from_ms(2));
  EXPECT_TRUE(rec.entries.empty());
}

TEST(Core, TypeToStringRoundtrip) {
  EXPECT_STREQ(to_string(CoreType::kLittleA53), "A53");
  EXPECT_STREQ(to_string(CoreType::kBigA57), "A57");
  EXPECT_STREQ(to_string(World::kNormal), "normal");
  EXPECT_STREQ(to_string(World::kSecure), "secure");
}

}  // namespace
}  // namespace satin::hw
