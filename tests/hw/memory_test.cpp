// The TOCTTOU-exact memory model: the decisive component of the race.
#include "hw/memory.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>

namespace satin::hw {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> out;
  for (int v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(Memory, StartsZeroed) {
  Memory mem(16);
  EXPECT_EQ(mem.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(mem.read(i), 0);
}

TEST(Memory, PokeAndRead) {
  Memory mem(16);
  mem.poke(4, bytes({1, 2, 3}));
  EXPECT_EQ(mem.read(4), 1);
  EXPECT_EQ(mem.read(6), 3);
  EXPECT_EQ(mem.read(3), 0);
}

TEST(Memory, OutOfRangeAccessesThrow) {
  Memory mem(8);
  EXPECT_THROW(mem.poke(7, bytes({1, 2})), std::out_of_range);
  EXPECT_THROW(mem.write(sim::Time::zero(), 8, bytes({1})),
               std::out_of_range);
  EXPECT_THROW(mem.read(8), std::out_of_range);
  EXPECT_THROW(mem.begin_scan(sim::Time::zero(), 4, 5, 1000.0),
               std::out_of_range);
}

// The write paths fail fast with the offending offset/len/size spelled
// out — both out-of-range shapes: offset beyond the end, and a length
// that runs past the end from a valid offset.
TEST(Memory, PokeOutOfRangeMessageNamesOffsetAndSize) {
  Memory mem(100);
  try {
    mem.poke(200, bytes({1}));
    FAIL() << "poke past the end did not throw";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("poke"), std::string::npos) << what;
    EXPECT_NE(what.find("200"), std::string::npos) << what;
    EXPECT_NE(what.find("100"), std::string::npos) << what;
  }
  try {
    mem.poke(96, bytes({1, 2, 3, 4, 5}));
    FAIL() << "poke running past the end did not throw";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("96"), std::string::npos) << what;
    EXPECT_NE(what.find("5"), std::string::npos) << what;
  }
}

TEST(Memory, WriteOutOfRangeMessageNamesOffsetAndSize) {
  Memory mem(100);
  try {
    mem.write(sim::Time::zero(), 101, bytes({1}));
    FAIL() << "write past the end did not throw";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("write"), std::string::npos) << what;
    EXPECT_NE(what.find("101"), std::string::npos) << what;
  }
  try {
    mem.write(sim::Time::zero(), 99, bytes({1, 2}));
    FAIL() << "write running past the end did not throw";
  } catch (const std::out_of_range& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("99"), std::string::npos) << what;
  }
  // Bounds math must not wrap: a huge offset with a small length is
  // rejected, not silently accepted via overflow.
  EXPECT_THROW(mem.poke(SIZE_MAX - 1, bytes({1, 2, 3})), std::out_of_range);
  EXPECT_THROW(mem.write(sim::Time::zero(), SIZE_MAX, bytes({1})),
               std::out_of_range);
  // Nothing was written and no generation moved by any rejected call.
  EXPECT_EQ(mem.write_generation(), 0u);
  EXPECT_EQ(mem.write_count(), 0u);
}

TEST(Memory, BeginScanValidatesArguments) {
  Memory mem(8);
  EXPECT_THROW(mem.begin_scan(sim::Time::zero(), 0, 0, 1000.0),
               std::invalid_argument);
  EXPECT_THROW(mem.begin_scan(sim::Time::zero(), 0, 4, 0.0),
               std::invalid_argument);
}

TEST(Memory, ScanWithoutWritesSeesCurrentBytes) {
  Memory mem(8);
  mem.poke(0, bytes({9, 8, 7, 6, 5, 4, 3, 2}));
  auto token = mem.begin_scan(sim::Time::zero(), 2, 4, 1000.0);
  const auto view = mem.finish_scan(token);
  EXPECT_EQ(view, bytes({7, 6, 5, 4}));
}

TEST(Memory, WriteBeforeCursorTouchIsVisible) {
  Memory mem(8);
  // Scan starts at t=0, 1 ns per byte: byte k touched at k ns.
  auto token = mem.begin_scan(sim::Time::zero(), 0, 8, 1000.0);
  // Byte 5 is touched at 5 ns; a write at 3 ns lands first.
  mem.write(sim::Time::from_ns(3), 5, bytes({0xAA}));
  const auto view = mem.finish_scan(token);
  EXPECT_EQ(view[5], 0xAA);
}

TEST(Memory, WriteAfterCursorTouchIsInvisible) {
  Memory mem(8);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 8, 1000.0);
  // Byte 2 touched at 2 ns; the write arrives at 3 ns — too late.
  mem.write(sim::Time::from_ns(3), 2, bytes({0xAA}));
  const auto view = mem.finish_scan(token);
  EXPECT_EQ(view[2], 0);
  // The real memory does hold the new value.
  EXPECT_EQ(mem.read(2), 0xAA);
}

TEST(Memory, WriteExactlyAtTouchTimeWins) {
  Memory mem(8);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 8, 1000.0);
  mem.write(sim::Time::from_ns(4), 4, bytes({0x55}));
  const auto view = mem.finish_scan(token);
  EXPECT_EQ(view[4], 0x55);
}

TEST(Memory, MultiByteWriteSplitsAcrossCursor) {
  // This is Eq. 1 in miniature: the recovery restores a span while the
  // scanner is mid-pass; bytes behind the cursor stay malicious in the
  // view, bytes ahead come back clean.
  Memory mem(16);
  std::vector<std::uint8_t> mal(8, 0xFF);
  mem.poke(4, mal);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 16, 1000.0);
  // Cursor reaches offset 8 at 8 ns. Restore offsets 4..11 at t=8 ns:
  // offsets 4..7 were touched at 4..7 ns (still 0xFF in the view);
  // offsets 8..11 touched at 8..11 ns (>= 8 ns: restored to 0).
  mem.write(sim::Time::from_ns(8), 4, std::vector<std::uint8_t>(8, 0x00));
  const auto view = mem.finish_scan(token);
  for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(view[i], 0xFF) << i;
  for (std::size_t i = 8; i < 12; ++i) EXPECT_EQ(view[i], 0x00) << i;
}

TEST(Memory, ScanStartedLaterUsesItsOwnClock) {
  Memory mem(8);
  auto token = mem.begin_scan(sim::Time::from_ns(100), 0, 8, 1000.0);
  // Byte 6 touched at 106 ns: write at 105 ns is visible.
  mem.write(sim::Time::from_ns(105), 6, bytes({0x11}));
  // Byte 1 touched at 101 ns: write at 103 ns is too late.
  mem.write(sim::Time::from_ns(103), 1, bytes({0x22}));
  const auto view = mem.finish_scan(token);
  EXPECT_EQ(view[6], 0x11);
  EXPECT_EQ(view[1], 0);
}

TEST(Memory, ConcurrentScansResolveIndependently) {
  Memory mem(8);
  auto fast = mem.begin_scan(sim::Time::zero(), 0, 8, 100.0);   // 0.1 ns/B
  auto slow = mem.begin_scan(sim::Time::zero(), 0, 8, 10000.0); // 10 ns/B
  // Write byte 7 at 5 ns: fast touched it at 0.7 ns (miss), slow at 70 ns
  // (sees it).
  mem.write(sim::Time::from_ns(5), 7, bytes({0x77}));
  EXPECT_EQ(mem.active_scan_count(), 2u);
  EXPECT_EQ(mem.finish_scan(fast)[7], 0);
  EXPECT_EQ(mem.finish_scan(slow)[7], 0x77);
  EXPECT_EQ(mem.active_scan_count(), 0u);
}

TEST(Memory, WriteOutsideScanRangeIgnoredByView) {
  Memory mem(16);
  auto token = mem.begin_scan(sim::Time::zero(), 4, 4, 1000.0);
  mem.write(sim::Time::zero(), 0, bytes({1, 2, 3, 4}));
  mem.write(sim::Time::zero(), 8, bytes({5}));
  const auto view = mem.finish_scan(token);
  EXPECT_EQ(view, bytes({0, 0, 0, 0}));
}

TEST(Memory, FinishUnknownTokenThrows) {
  Memory mem(8);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 4, 1000.0);
  EXPECT_EQ(mem.finish_scan(token).size(), 4u);
  EXPECT_THROW(mem.finish_scan(token), std::logic_error);
}

TEST(Memory, CancelScanDropsIt) {
  Memory mem(8);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 4, 1000.0);
  mem.cancel_scan(token);
  EXPECT_EQ(mem.active_scan_count(), 0u);
  EXPECT_THROW(mem.cancel_scan(token), std::logic_error);
}

TEST(Memory, WriteCountTracksTimedWritesOnly) {
  Memory mem(8);
  mem.poke(0, bytes({1}));
  EXPECT_EQ(mem.write_count(), 0u);
  mem.write(sim::Time::zero(), 0, bytes({2}));
  mem.write(sim::Time::zero(), 1, bytes({3}));
  EXPECT_EQ(mem.write_count(), 2u);
}

// Copy-on-first-overlap: a scan nothing raced must read physical memory
// directly (no private copy), and the zero-copy and materialized paths
// must return identical bytes for the same history.
TEST(Memory, UnracedScanIsZeroCopy) {
  Memory mem(16);
  mem.poke(0, bytes({9, 8, 7, 6, 5, 4, 3, 2}));
  auto token = mem.begin_scan(sim::Time::zero(), 2, 4, 1000.0);
  const auto view = mem.finish_scan(token);
  EXPECT_FALSE(view.owned());
  EXPECT_EQ(view, bytes({7, 6, 5, 4}));
}

TEST(Memory, OverlappingWriteMaterializesTheView) {
  Memory mem(16);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 8, 1000.0);
  mem.write(sim::Time::from_ns(100), 2, bytes({0xAA}));  // after the cursor
  const auto view = mem.finish_scan(token);
  EXPECT_TRUE(view.owned());
  // The view holds the pre-write byte even though memory moved on.
  EXPECT_EQ(view[2], 0);
  EXPECT_EQ(mem.read(2), 0xAA);
}

TEST(Memory, NonOverlappingWriteKeepsTheScanZeroCopy) {
  Memory mem(16);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 4, 1000.0);
  mem.write(sim::Time::zero(), 8, bytes({1, 2, 3}));  // outside the window
  const auto view = mem.finish_scan(token);
  EXPECT_FALSE(view.owned());
  EXPECT_EQ(view, bytes({0, 0, 0, 0}));
}

TEST(Memory, PokeDuringScanPreservesTheSnapshot) {
  Memory mem(16);
  mem.poke(0, bytes({1, 2, 3, 4}));
  auto token = mem.begin_scan(sim::Time::zero(), 0, 4, 1000.0);
  // An untimed poke is invisible to in-flight scans: the view keeps the
  // bytes as they were at materialization time.
  mem.poke(1, bytes({0xEE, 0xEE}));
  const auto view = mem.finish_scan(token);
  EXPECT_TRUE(view.owned());
  EXPECT_EQ(view, bytes({1, 2, 3, 4}));
  EXPECT_EQ(mem.read(1), 0xEE);
}

TEST(Memory, ZeroCopyAndMaterializedViewsAgreeByteForByte) {
  // Same poke history, two scans: one raced by a no-op write (same value
  // rewritten — still a race, still materializes), one untouched. Their
  // observed bytes must be identical.
  Memory raced(32), quiet(32);
  for (std::size_t i = 0; i < 32; ++i) {
    const auto v = static_cast<std::uint8_t>(i * 7 + 3);
    raced.poke(i, {&v, 1});
    quiet.poke(i, {&v, 1});
  }
  auto t_raced = raced.begin_scan(sim::Time::zero(), 0, 32, 1000.0);
  auto t_quiet = quiet.begin_scan(sim::Time::zero(), 0, 32, 1000.0);
  const std::uint8_t same = static_cast<std::uint8_t>(5 * 7 + 3);
  raced.write(sim::Time::from_ns(1), 5, {&same, 1});
  const auto view_raced = raced.finish_scan(t_raced);
  const auto view_quiet = quiet.finish_scan(t_quiet);
  EXPECT_TRUE(view_raced.owned());
  EXPECT_FALSE(view_quiet.owned());
  EXPECT_EQ(view_raced.to_vector(), view_quiet.to_vector());
}

TEST(Memory, ScanViewCopyReanchorsOwnedStorage) {
  Memory mem(8);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 4, 1000.0);
  mem.write(sim::Time::from_ns(100), 1, bytes({0x99}));
  const auto view = mem.finish_scan(token);
  ASSERT_TRUE(view.owned());
  // Copy, then mutate the original's source of truth: the copy must keep
  // its own bytes (span re-anchored onto the copied storage).
  Memory::ScanView copy = view;
  EXPECT_EQ(copy.to_vector(), view.to_vector());
  // The copy's span points into its own storage, not the original's.
  EXPECT_NE(copy.bytes().data(), view.bytes().data());
  Memory::ScanView assigned;
  assigned = view;
  EXPECT_EQ(assigned.to_vector(), view.to_vector());
  // Moved-from-safe: moving keeps the bytes readable at the destination.
  Memory::ScanView moved = std::move(copy);
  EXPECT_EQ(moved.to_vector(), view.to_vector());
}

TEST(Memory, ZeroCopyViewTracksSubsequentMutation) {
  // The zero-copy window is documented as valid only until the next
  // mutation — and it reads through to physical memory: hash-before-
  // mutate is the caller's contract (introspect.cpp hashes immediately).
  Memory mem(8);
  mem.poke(0, bytes({1, 2, 3, 4}));
  auto token = mem.begin_scan(sim::Time::zero(), 0, 4, 1000.0);
  const auto view = mem.finish_scan(token);
  EXPECT_FALSE(view.owned());
  EXPECT_EQ(view[0], 1);
  mem.poke(0, bytes({0xFF}));
  EXPECT_EQ(view[0], 0xFF);  // window, not snapshot
}

// --- Write-generation dirty tracking -----------------------------------

TEST(Memory, FreshMemoryHasZeroGenerations) {
  Memory mem(1000);  // 4 chunks: 256+256+256+232
  EXPECT_EQ(mem.write_generation(), 0u);
  EXPECT_EQ(mem.chunk_count(), 4u);
  for (std::size_t c = 0; c < mem.chunk_count(); ++c) {
    EXPECT_EQ(mem.chunk_generation(c), 0u) << c;
  }
  EXPECT_EQ(mem.generation(0, 1000), 0u);
  EXPECT_EQ(mem.generation(300, 10), 0u);
}

TEST(Memory, PokeBumpsOnlyTouchedChunks) {
  Memory mem(1024);  // chunks 0..3
  mem.poke(300, bytes({0xAA}));  // chunk 1
  EXPECT_EQ(mem.write_generation(), 1u);
  EXPECT_EQ(mem.chunk_generation(0), 0u);
  EXPECT_EQ(mem.chunk_generation(1), 1u);
  EXPECT_EQ(mem.chunk_generation(2), 0u);
  EXPECT_EQ(mem.chunk_generation(3), 0u);
  // Range queries see the max over the overlapped chunks.
  EXPECT_EQ(mem.generation(0, 256), 0u);
  EXPECT_EQ(mem.generation(256, 256), 1u);
  EXPECT_EQ(mem.generation(300, 1), 1u);
  EXPECT_EQ(mem.generation(0, 1024), 1u);
}

TEST(Memory, WriteSpanningChunkBoundaryBumpsBothChunks) {
  Memory mem(1024);
  // 4 bytes at 254..257 straddle the chunk 0 / chunk 1 boundary.
  mem.write(sim::Time::zero(), 254, bytes({1, 2, 3, 4}));
  EXPECT_EQ(mem.write_generation(), 1u);
  EXPECT_EQ(mem.chunk_generation(0), 1u);
  EXPECT_EQ(mem.chunk_generation(1), 1u);
  EXPECT_EQ(mem.chunk_generation(2), 0u);
}

TEST(Memory, GenerationIsMonotonicAndRangeTakesTheMax) {
  Memory mem(1024);
  mem.poke(0, bytes({1}));                      // gen 1, chunk 0
  mem.write(sim::Time::zero(), 900, bytes({2}));  // gen 2, chunk 3
  mem.poke(10, bytes({3}));                     // gen 3, chunk 0 again
  EXPECT_EQ(mem.write_generation(), 3u);
  EXPECT_EQ(mem.chunk_generation(0), 3u);
  EXPECT_EQ(mem.chunk_generation(3), 2u);
  EXPECT_EQ(mem.generation(0, 256), 3u);
  EXPECT_EQ(mem.generation(768, 256), 2u);
  EXPECT_EQ(mem.generation(256, 512), 0u);  // untouched middle
  EXPECT_EQ(mem.generation(0, 1024), 3u);
}

TEST(Memory, RangeGenerationCoversLargeSpansWithSuperchunks) {
  // > 64 chunks so the superchunk-skipping walk actually runs; a single
  // dirty chunk deep inside must still surface through the range max.
  constexpr std::size_t kSize = 200 * Memory::kChunkBytes;
  Memory mem(kSize);
  mem.poke(130 * Memory::kChunkBytes + 7, bytes({0xEE}));
  EXPECT_EQ(mem.generation(0, kSize), 1u);
  EXPECT_EQ(mem.generation(0, 130 * Memory::kChunkBytes), 0u);
  EXPECT_EQ(mem.generation(130 * Memory::kChunkBytes, Memory::kChunkBytes),
            1u);
  EXPECT_EQ(mem.generation(131 * Memory::kChunkBytes, 60 * Memory::kChunkBytes),
            0u);
}

namespace {
// Flips one bit of one byte in the first scan view it sees; inert after.
class FlipOneByteHooks : public FaultHooks {
 public:
  explicit FlipOneByteHooks(std::size_t pos) : pos_(pos) {}
  TimerFaultDecision on_program_secure(CoreId, sim::Time) override {
    return {};
  }
  bool drop_secure_irq(CoreId, IrqId) override { return false; }
  bool fail_secure_entry(CoreId) override { return false; }
  void corrupt_scan_view(sim::Time, std::size_t offset,
                         std::vector<std::uint8_t>& view) override {
    if (armed_ && pos_ >= offset && pos_ - offset < view.size()) {
      view[pos_ - offset] ^= 0x01;
      armed_ = false;
    }
  }

 private:
  std::size_t pos_;
  bool armed_ = true;
};
}  // namespace

TEST(Memory, FaultFlippedScanViewBumpsTheGlitchedChunkOnly) {
  Memory mem(1024);
  FlipOneByteHooks hooks(600);  // chunk 2
  mem.set_fault_hooks(&hooks);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 1024, 1000.0);
  // The glitch dirtied chunk 2's generation even though physical memory
  // is untouched — the digest cache must not serve a stale "clean" digest
  // for a window a glitch corrupted.
  EXPECT_EQ(mem.write_generation(), 1u);
  EXPECT_EQ(mem.chunk_generation(0), 0u);
  EXPECT_EQ(mem.chunk_generation(1), 0u);
  EXPECT_EQ(mem.chunk_generation(2), 1u);
  EXPECT_EQ(mem.chunk_generation(3), 0u);
  const auto view = mem.finish_scan(token);
  EXPECT_TRUE(view.owned());  // glitches land on a private view
  EXPECT_EQ(view[600], 0x01);
  EXPECT_EQ(mem.read(600), 0x00);  // backing bytes intact
}

TEST(Memory, UnchangedScanViewUnderHooksBumpsNothing) {
  Memory mem(1024);
  FlipOneByteHooks hooks(600);
  mem.set_fault_hooks(&hooks);
  // First scan consumes the one armed flip; the second runs with hooks
  // installed but no corruption and must leave the generations alone.
  mem.cancel_scan(mem.begin_scan(sim::Time::zero(), 0, 1024, 1000.0));
  const std::uint64_t gen = mem.write_generation();
  auto token = mem.begin_scan(sim::Time::zero(), 0, 1024, 1000.0);
  EXPECT_EQ(mem.write_generation(), gen);
  (void)mem.finish_scan(token);
}

TEST(Memory, FractionalPerByteSpeed) {
  // Table I speeds are fractional in ps (e.g. 6.71e-9 s = 6710 ps); a
  // sub-ps fraction must not distort the touch ordering.
  Memory mem(1000);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 1000, 6710.5);
  // Byte 500 touched at 500 * 6710.5 ps = 3,355,250 ps.
  mem.write(sim::Time::from_ps(3'355'249), 500, bytes({0xAB}));
  mem.write(sim::Time::from_ps(3'361'962), 501, bytes({0xCD}));  // late by 2ps
  const auto view = mem.finish_scan(token);
  EXPECT_EQ(view[500], 0xAB);
  EXPECT_EQ(view[501], 0x00);
}

}  // namespace
}  // namespace satin::hw
