// The TOCTTOU-exact memory model: the decisive component of the race.
#include "hw/memory.h"

#include <gtest/gtest.h>

#include <utility>

namespace satin::hw {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> out;
  for (int v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(Memory, StartsZeroed) {
  Memory mem(16);
  EXPECT_EQ(mem.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) EXPECT_EQ(mem.read(i), 0);
}

TEST(Memory, PokeAndRead) {
  Memory mem(16);
  mem.poke(4, bytes({1, 2, 3}));
  EXPECT_EQ(mem.read(4), 1);
  EXPECT_EQ(mem.read(6), 3);
  EXPECT_EQ(mem.read(3), 0);
}

TEST(Memory, OutOfRangeAccessesThrow) {
  Memory mem(8);
  EXPECT_THROW(mem.poke(7, bytes({1, 2})), std::out_of_range);
  EXPECT_THROW(mem.write(sim::Time::zero(), 8, bytes({1})),
               std::out_of_range);
  EXPECT_THROW(mem.read(8), std::out_of_range);
  EXPECT_THROW(mem.begin_scan(sim::Time::zero(), 4, 5, 1000.0),
               std::out_of_range);
}

TEST(Memory, BeginScanValidatesArguments) {
  Memory mem(8);
  EXPECT_THROW(mem.begin_scan(sim::Time::zero(), 0, 0, 1000.0),
               std::invalid_argument);
  EXPECT_THROW(mem.begin_scan(sim::Time::zero(), 0, 4, 0.0),
               std::invalid_argument);
}

TEST(Memory, ScanWithoutWritesSeesCurrentBytes) {
  Memory mem(8);
  mem.poke(0, bytes({9, 8, 7, 6, 5, 4, 3, 2}));
  auto token = mem.begin_scan(sim::Time::zero(), 2, 4, 1000.0);
  const auto view = mem.finish_scan(token);
  EXPECT_EQ(view, bytes({7, 6, 5, 4}));
}

TEST(Memory, WriteBeforeCursorTouchIsVisible) {
  Memory mem(8);
  // Scan starts at t=0, 1 ns per byte: byte k touched at k ns.
  auto token = mem.begin_scan(sim::Time::zero(), 0, 8, 1000.0);
  // Byte 5 is touched at 5 ns; a write at 3 ns lands first.
  mem.write(sim::Time::from_ns(3), 5, bytes({0xAA}));
  const auto view = mem.finish_scan(token);
  EXPECT_EQ(view[5], 0xAA);
}

TEST(Memory, WriteAfterCursorTouchIsInvisible) {
  Memory mem(8);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 8, 1000.0);
  // Byte 2 touched at 2 ns; the write arrives at 3 ns — too late.
  mem.write(sim::Time::from_ns(3), 2, bytes({0xAA}));
  const auto view = mem.finish_scan(token);
  EXPECT_EQ(view[2], 0);
  // The real memory does hold the new value.
  EXPECT_EQ(mem.read(2), 0xAA);
}

TEST(Memory, WriteExactlyAtTouchTimeWins) {
  Memory mem(8);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 8, 1000.0);
  mem.write(sim::Time::from_ns(4), 4, bytes({0x55}));
  const auto view = mem.finish_scan(token);
  EXPECT_EQ(view[4], 0x55);
}

TEST(Memory, MultiByteWriteSplitsAcrossCursor) {
  // This is Eq. 1 in miniature: the recovery restores a span while the
  // scanner is mid-pass; bytes behind the cursor stay malicious in the
  // view, bytes ahead come back clean.
  Memory mem(16);
  std::vector<std::uint8_t> mal(8, 0xFF);
  mem.poke(4, mal);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 16, 1000.0);
  // Cursor reaches offset 8 at 8 ns. Restore offsets 4..11 at t=8 ns:
  // offsets 4..7 were touched at 4..7 ns (still 0xFF in the view);
  // offsets 8..11 touched at 8..11 ns (>= 8 ns: restored to 0).
  mem.write(sim::Time::from_ns(8), 4, std::vector<std::uint8_t>(8, 0x00));
  const auto view = mem.finish_scan(token);
  for (std::size_t i = 4; i < 8; ++i) EXPECT_EQ(view[i], 0xFF) << i;
  for (std::size_t i = 8; i < 12; ++i) EXPECT_EQ(view[i], 0x00) << i;
}

TEST(Memory, ScanStartedLaterUsesItsOwnClock) {
  Memory mem(8);
  auto token = mem.begin_scan(sim::Time::from_ns(100), 0, 8, 1000.0);
  // Byte 6 touched at 106 ns: write at 105 ns is visible.
  mem.write(sim::Time::from_ns(105), 6, bytes({0x11}));
  // Byte 1 touched at 101 ns: write at 103 ns is too late.
  mem.write(sim::Time::from_ns(103), 1, bytes({0x22}));
  const auto view = mem.finish_scan(token);
  EXPECT_EQ(view[6], 0x11);
  EXPECT_EQ(view[1], 0);
}

TEST(Memory, ConcurrentScansResolveIndependently) {
  Memory mem(8);
  auto fast = mem.begin_scan(sim::Time::zero(), 0, 8, 100.0);   // 0.1 ns/B
  auto slow = mem.begin_scan(sim::Time::zero(), 0, 8, 10000.0); // 10 ns/B
  // Write byte 7 at 5 ns: fast touched it at 0.7 ns (miss), slow at 70 ns
  // (sees it).
  mem.write(sim::Time::from_ns(5), 7, bytes({0x77}));
  EXPECT_EQ(mem.active_scan_count(), 2u);
  EXPECT_EQ(mem.finish_scan(fast)[7], 0);
  EXPECT_EQ(mem.finish_scan(slow)[7], 0x77);
  EXPECT_EQ(mem.active_scan_count(), 0u);
}

TEST(Memory, WriteOutsideScanRangeIgnoredByView) {
  Memory mem(16);
  auto token = mem.begin_scan(sim::Time::zero(), 4, 4, 1000.0);
  mem.write(sim::Time::zero(), 0, bytes({1, 2, 3, 4}));
  mem.write(sim::Time::zero(), 8, bytes({5}));
  const auto view = mem.finish_scan(token);
  EXPECT_EQ(view, bytes({0, 0, 0, 0}));
}

TEST(Memory, FinishUnknownTokenThrows) {
  Memory mem(8);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 4, 1000.0);
  EXPECT_EQ(mem.finish_scan(token).size(), 4u);
  EXPECT_THROW(mem.finish_scan(token), std::logic_error);
}

TEST(Memory, CancelScanDropsIt) {
  Memory mem(8);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 4, 1000.0);
  mem.cancel_scan(token);
  EXPECT_EQ(mem.active_scan_count(), 0u);
  EXPECT_THROW(mem.cancel_scan(token), std::logic_error);
}

TEST(Memory, WriteCountTracksTimedWritesOnly) {
  Memory mem(8);
  mem.poke(0, bytes({1}));
  EXPECT_EQ(mem.write_count(), 0u);
  mem.write(sim::Time::zero(), 0, bytes({2}));
  mem.write(sim::Time::zero(), 1, bytes({3}));
  EXPECT_EQ(mem.write_count(), 2u);
}

// Copy-on-first-overlap: a scan nothing raced must read physical memory
// directly (no private copy), and the zero-copy and materialized paths
// must return identical bytes for the same history.
TEST(Memory, UnracedScanIsZeroCopy) {
  Memory mem(16);
  mem.poke(0, bytes({9, 8, 7, 6, 5, 4, 3, 2}));
  auto token = mem.begin_scan(sim::Time::zero(), 2, 4, 1000.0);
  const auto view = mem.finish_scan(token);
  EXPECT_FALSE(view.owned());
  EXPECT_EQ(view, bytes({7, 6, 5, 4}));
}

TEST(Memory, OverlappingWriteMaterializesTheView) {
  Memory mem(16);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 8, 1000.0);
  mem.write(sim::Time::from_ns(100), 2, bytes({0xAA}));  // after the cursor
  const auto view = mem.finish_scan(token);
  EXPECT_TRUE(view.owned());
  // The view holds the pre-write byte even though memory moved on.
  EXPECT_EQ(view[2], 0);
  EXPECT_EQ(mem.read(2), 0xAA);
}

TEST(Memory, NonOverlappingWriteKeepsTheScanZeroCopy) {
  Memory mem(16);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 4, 1000.0);
  mem.write(sim::Time::zero(), 8, bytes({1, 2, 3}));  // outside the window
  const auto view = mem.finish_scan(token);
  EXPECT_FALSE(view.owned());
  EXPECT_EQ(view, bytes({0, 0, 0, 0}));
}

TEST(Memory, PokeDuringScanPreservesTheSnapshot) {
  Memory mem(16);
  mem.poke(0, bytes({1, 2, 3, 4}));
  auto token = mem.begin_scan(sim::Time::zero(), 0, 4, 1000.0);
  // An untimed poke is invisible to in-flight scans: the view keeps the
  // bytes as they were at materialization time.
  mem.poke(1, bytes({0xEE, 0xEE}));
  const auto view = mem.finish_scan(token);
  EXPECT_TRUE(view.owned());
  EXPECT_EQ(view, bytes({1, 2, 3, 4}));
  EXPECT_EQ(mem.read(1), 0xEE);
}

TEST(Memory, ZeroCopyAndMaterializedViewsAgreeByteForByte) {
  // Same poke history, two scans: one raced by a no-op write (same value
  // rewritten — still a race, still materializes), one untouched. Their
  // observed bytes must be identical.
  Memory raced(32), quiet(32);
  for (std::size_t i = 0; i < 32; ++i) {
    const auto v = static_cast<std::uint8_t>(i * 7 + 3);
    raced.poke(i, {&v, 1});
    quiet.poke(i, {&v, 1});
  }
  auto t_raced = raced.begin_scan(sim::Time::zero(), 0, 32, 1000.0);
  auto t_quiet = quiet.begin_scan(sim::Time::zero(), 0, 32, 1000.0);
  const std::uint8_t same = static_cast<std::uint8_t>(5 * 7 + 3);
  raced.write(sim::Time::from_ns(1), 5, {&same, 1});
  const auto view_raced = raced.finish_scan(t_raced);
  const auto view_quiet = quiet.finish_scan(t_quiet);
  EXPECT_TRUE(view_raced.owned());
  EXPECT_FALSE(view_quiet.owned());
  EXPECT_EQ(view_raced.to_vector(), view_quiet.to_vector());
}

TEST(Memory, ScanViewCopyReanchorsOwnedStorage) {
  Memory mem(8);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 4, 1000.0);
  mem.write(sim::Time::from_ns(100), 1, bytes({0x99}));
  const auto view = mem.finish_scan(token);
  ASSERT_TRUE(view.owned());
  // Copy, then mutate the original's source of truth: the copy must keep
  // its own bytes (span re-anchored onto the copied storage).
  Memory::ScanView copy = view;
  EXPECT_EQ(copy.to_vector(), view.to_vector());
  // The copy's span points into its own storage, not the original's.
  EXPECT_NE(copy.bytes().data(), view.bytes().data());
  Memory::ScanView assigned;
  assigned = view;
  EXPECT_EQ(assigned.to_vector(), view.to_vector());
  // Moved-from-safe: moving keeps the bytes readable at the destination.
  Memory::ScanView moved = std::move(copy);
  EXPECT_EQ(moved.to_vector(), view.to_vector());
}

TEST(Memory, ZeroCopyViewTracksSubsequentMutation) {
  // The zero-copy window is documented as valid only until the next
  // mutation — and it reads through to physical memory: hash-before-
  // mutate is the caller's contract (introspect.cpp hashes immediately).
  Memory mem(8);
  mem.poke(0, bytes({1, 2, 3, 4}));
  auto token = mem.begin_scan(sim::Time::zero(), 0, 4, 1000.0);
  const auto view = mem.finish_scan(token);
  EXPECT_FALSE(view.owned());
  EXPECT_EQ(view[0], 1);
  mem.poke(0, bytes({0xFF}));
  EXPECT_EQ(view[0], 0xFF);  // window, not snapshot
}

TEST(Memory, FractionalPerByteSpeed) {
  // Table I speeds are fractional in ps (e.g. 6.71e-9 s = 6710 ps); a
  // sub-ps fraction must not distort the touch ordering.
  Memory mem(1000);
  auto token = mem.begin_scan(sim::Time::zero(), 0, 1000, 6710.5);
  // Byte 500 touched at 500 * 6710.5 ps = 3,355,250 ps.
  mem.write(sim::Time::from_ps(3'355'249), 500, bytes({0xAB}));
  mem.write(sim::Time::from_ps(3'361'962), 501, bytes({0xCD}));  // late by 2ps
  const auto view = mem.finish_scan(token);
  EXPECT_EQ(view[500], 0xAB);
  EXPECT_EQ(view[501], 0x00);
}

}  // namespace
}  // namespace satin::hw
