// Property fuzz: the incremental TOCTTOU scan bookkeeping must agree
// with a brute-force oracle that replays the write log against the
// touch-time rule, for random scan geometries and write schedules.
#include <gtest/gtest.h>

#include <map>

#include "hw/memory.h"
#include "sim/rng.h"

namespace satin::hw {
namespace {

struct WriteEvent {
  sim::Time when;
  std::size_t offset;
  std::vector<std::uint8_t> data;
};

struct ScanPlan {
  sim::Time start;
  std::size_t offset;
  std::size_t length;
  double per_byte_ps;
};

// Oracle: byte `pos` of the scan sees the value of the latest write with
// t_write <= touch(pos); otherwise the initial byte.
std::vector<std::uint8_t> oracle_view(
    const std::vector<std::uint8_t>& initial, const ScanPlan& scan,
    const std::vector<WriteEvent>& writes) {
  std::vector<std::uint8_t> view(initial.begin() + static_cast<long>(scan.offset),
                                 initial.begin() +
                                     static_cast<long>(scan.offset + scan.length));
  for (std::size_t i = 0; i < scan.length; ++i) {
    const std::size_t pos = scan.offset + i;
    const double touch_ps = static_cast<double>(scan.start.ps()) +
                            scan.per_byte_ps * static_cast<double>(i);
    // Writes are fed in time order; the last qualifying one wins.
    for (const WriteEvent& w : writes) {
      if (pos < w.offset || pos >= w.offset + w.data.size()) continue;
      if (static_cast<double>(w.when.ps()) <= touch_ps) {
        view[i] = w.data[pos - w.offset];
      }
    }
  }
  return view;
}

class MemoryFuzz : public ::testing::TestWithParam<int> {};

TEST_P(MemoryFuzz, IncrementalScanMatchesOracle) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  constexpr std::size_t kSize = 4096;

  std::vector<std::uint8_t> initial(kSize);
  for (auto& b : initial) b = static_cast<std::uint8_t>(rng.next_u64());
  Memory memory(kSize);
  memory.poke(0, initial);

  // 1-3 concurrent scans with random geometry and speeds.
  const int num_scans = static_cast<int>(rng.uniform_int(1, 3));
  std::vector<ScanPlan> plans;
  std::vector<Memory::ScanToken> tokens;
  for (int i = 0; i < num_scans; ++i) {
    ScanPlan plan;
    plan.offset = static_cast<std::size_t>(rng.uniform_int(0, kSize / 2));
    plan.length = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(kSize - plan.offset)));
    plan.start = sim::Time::from_ns(rng.uniform_int(0, 2000));
    plan.per_byte_ps = rng.uniform(50.0, 5000.0);
    tokens.push_back(memory.begin_scan(plan.start, plan.offset, plan.length,
                                       plan.per_byte_ps));
    plans.push_back(plan);
  }

  // Random writes in non-decreasing time order (as the engine delivers).
  std::vector<WriteEvent> writes;
  sim::Time clock = sim::Time::zero();
  for (int i = 0; i < 200; ++i) {
    clock += sim::Duration::from_ns(rng.uniform_int(0, 200));
    WriteEvent w;
    w.when = clock;
    w.offset = static_cast<std::size_t>(rng.uniform_int(0, kSize - 16));
    w.data.resize(static_cast<std::size_t>(rng.uniform_int(1, 16)));
    for (auto& b : w.data) b = static_cast<std::uint8_t>(rng.next_u64());
    memory.write(w.when, w.offset, w.data);
    writes.push_back(std::move(w));
  }

  for (int i = 0; i < num_scans; ++i) {
    const auto view = memory.finish_scan(tokens[static_cast<std::size_t>(i)]);
    const auto expected = oracle_view(initial, plans[static_cast<std::size_t>(i)], writes);
    ASSERT_EQ(view, expected) << "scan " << i << " diverged from the oracle";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemoryFuzz, ::testing::Range(0, 12));

}  // namespace
}  // namespace satin::hw
