#include "secure/introspect.h"

#include <gtest/gtest.h>

#include "secure/authorized_store.h"

namespace satin::secure {
namespace {

TEST(Introspector, PerByteSampleRespectsTable1Bounds) {
  hw::Platform platform;
  Introspector direct(platform, HashKind::kDjb2, ScanStrategy::kDirectHash);
  Introspector snap(platform, HashKind::kDjb2,
                    ScanStrategy::kSnapshotThenHash);
  for (int i = 0; i < 2000; ++i) {
    const double a53 = direct.sample_per_byte_seconds(hw::CoreType::kLittleA53);
    EXPECT_GE(a53, 9.23e-9);
    EXPECT_LE(a53, 1.14e-8);
    const double a57 = direct.sample_per_byte_seconds(hw::CoreType::kBigA57);
    EXPECT_GE(a57, 6.67e-9);
    EXPECT_LE(a57, 7.50e-9);
    const double s53 = snap.sample_per_byte_seconds(hw::CoreType::kLittleA53);
    EXPECT_GE(s53, 9.24e-9);
    EXPECT_LE(s53, 1.57e-8);
  }
}

TEST(Introspector, ScanDurationMatchesPerByteSpeed) {
  hw::Platform platform;
  platform.memory().poke(0, std::vector<std::uint8_t>(1000, 0x5A));
  Introspector intro(platform);
  bool done = false;
  intro.scan_async(/*core=*/5, 0, 100'000, [&](const ScanResult& r) {
    done = true;
    const double dur = (r.scan_end - r.scan_start).sec();
    EXPECT_NEAR(dur, r.per_byte_s * 100'000, 1e-12);
    EXPECT_GE(r.per_byte_s, 6.67e-9);  // core 5 is an A57
    EXPECT_LE(r.per_byte_s, 7.50e-9);
  });
  platform.engine().run_until(sim::Time::from_ms(10));
  EXPECT_TRUE(done);
  EXPECT_EQ(intro.scans_completed(), 1u);
}

TEST(Introspector, CleanScanMatchesReferenceDigest) {
  hw::Platform platform;
  std::vector<std::uint8_t> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  platform.memory().poke(100, data);
  Introspector intro(platform);
  const std::uint64_t expected = intro.digest_reference(data);
  std::uint64_t got = 0;
  intro.scan_async(0, 100, data.size(),
                   [&](const ScanResult& r) { got = r.digest; });
  platform.engine().run_until(sim::Time::from_ms(1));
  EXPECT_EQ(got, expected);
}

TEST(Introspector, WriteBehindCursorEscapesDirectHash) {
  hw::Platform platform;
  Introspector intro(platform);
  const std::vector<std::uint8_t> benign(1 << 20, 0x00);
  const std::uint64_t clean = intro.digest_reference(benign);
  // Corrupt a byte near the start, then "recover" it shortly after the
  // scan begins — after the cursor passed it: the mismatch IS caught.
  platform.memory().poke(10, std::vector<std::uint8_t>{0xFF});
  std::uint64_t got = 0;
  intro.scan_async(5, 0, 1 << 20, [&](const ScanResult& r) { got = r.digest; });
  platform.engine().schedule_at(sim::Time::from_us(500), [&] {
    platform.memory().write(platform.engine().now(), 10,
                            std::vector<std::uint8_t>{0x00});
  });
  platform.engine().run_until(sim::Time::from_ms(100));
  EXPECT_NE(got, clean) << "cursor passed byte 10 before the recovery";
}

TEST(Introspector, EarlyRecoveryEscapesDetection) {
  hw::Platform platform;
  Introspector intro(platform);
  const std::vector<std::uint8_t> benign(1 << 20, 0x00);
  const std::uint64_t clean = intro.digest_reference(benign);
  // Corrupt a byte near the END; recover it before the cursor arrives.
  const std::size_t off = (1 << 20) - 5;
  platform.memory().poke(off, std::vector<std::uint8_t>{0xFF});
  std::uint64_t got = 0;
  intro.scan_async(5, 0, 1 << 20, [&](const ScanResult& r) { got = r.digest; });
  platform.engine().schedule_at(sim::Time::from_us(500), [&] {
    platform.memory().write(platform.engine().now(), off,
                            std::vector<std::uint8_t>{0x00});
  });
  platform.engine().run_until(sim::Time::from_ms(100));
  EXPECT_EQ(got, clean) << "byte recovered before the cursor reached it";
}

TEST(Introspector, StrategyNames) {
  EXPECT_STREQ(to_string(ScanStrategy::kDirectHash), "direct-hash");
  EXPECT_STREQ(to_string(ScanStrategy::kSnapshotThenHash), "snapshot");
}

TEST(AuthorizedStore, AuthorizeLookupMatch) {
  AuthorizedStore store;
  store.authorize("area/3", 0xABCD);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.lookup("area/3"), 0xABCDu);
  EXPECT_FALSE(store.lookup("area/4").has_value());
  EXPECT_TRUE(store.matches("area/3", 0xABCD));
  EXPECT_FALSE(store.matches("area/3", 0xABCE));
}

TEST(AuthorizedStore, MissingKeyFailsClosed) {
  AuthorizedStore store;
  EXPECT_FALSE(store.matches("area/0", 0));
}

TEST(AuthorizedStore, ReauthorizationRejected) {
  AuthorizedStore store;
  store.authorize("area/0", 1);
  EXPECT_THROW(store.authorize("area/0", 2), std::logic_error);
}

}  // namespace
}  // namespace satin::secure
