#include "secure/introspect.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "hw/fault_hooks.h"
#include "secure/authorized_store.h"

namespace satin::secure {
namespace {

// Runs one scan to completion and returns its digest.
std::uint64_t scan_once(hw::Platform& platform, Introspector& intro,
                        std::size_t offset, std::size_t length) {
  std::uint64_t got = 0;
  intro.scan_async(0, offset, length,
                   [&](const ScanResult& r) { got = r.digest; });
  platform.engine().run_until(platform.engine().now() + sim::Duration::from_ms(200));
  return got;
}

TEST(Introspector, PerByteSampleRespectsTable1Bounds) {
  hw::Platform platform;
  Introspector direct(platform, HashKind::kDjb2, ScanStrategy::kDirectHash);
  Introspector snap(platform, HashKind::kDjb2,
                    ScanStrategy::kSnapshotThenHash);
  for (int i = 0; i < 2000; ++i) {
    const double a53 = direct.sample_per_byte_seconds(hw::CoreType::kLittleA53);
    EXPECT_GE(a53, 9.23e-9);
    EXPECT_LE(a53, 1.14e-8);
    const double a57 = direct.sample_per_byte_seconds(hw::CoreType::kBigA57);
    EXPECT_GE(a57, 6.67e-9);
    EXPECT_LE(a57, 7.50e-9);
    const double s53 = snap.sample_per_byte_seconds(hw::CoreType::kLittleA53);
    EXPECT_GE(s53, 9.24e-9);
    EXPECT_LE(s53, 1.57e-8);
  }
}

TEST(Introspector, ScanDurationMatchesPerByteSpeed) {
  hw::Platform platform;
  platform.memory().poke(0, std::vector<std::uint8_t>(1000, 0x5A));
  Introspector intro(platform);
  bool done = false;
  intro.scan_async(/*core=*/5, 0, 100'000, [&](const ScanResult& r) {
    done = true;
    const double dur = (r.scan_end - r.scan_start).sec();
    EXPECT_NEAR(dur, r.per_byte_s * 100'000, 1e-12);
    EXPECT_GE(r.per_byte_s, 6.67e-9);  // core 5 is an A57
    EXPECT_LE(r.per_byte_s, 7.50e-9);
  });
  platform.engine().run_until(sim::Time::from_ms(10));
  EXPECT_TRUE(done);
  EXPECT_EQ(intro.scans_completed(), 1u);
}

TEST(Introspector, CleanScanMatchesReferenceDigest) {
  hw::Platform platform;
  std::vector<std::uint8_t> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 7);
  }
  platform.memory().poke(100, data);
  Introspector intro(platform);
  const std::uint64_t expected = intro.digest_reference(data);
  std::uint64_t got = 0;
  intro.scan_async(0, 100, data.size(),
                   [&](const ScanResult& r) { got = r.digest; });
  platform.engine().run_until(sim::Time::from_ms(1));
  EXPECT_EQ(got, expected);
}

TEST(Introspector, WriteBehindCursorEscapesDirectHash) {
  hw::Platform platform;
  Introspector intro(platform);
  const std::vector<std::uint8_t> benign(1 << 20, 0x00);
  const std::uint64_t clean = intro.digest_reference(benign);
  // Corrupt a byte near the start, then "recover" it shortly after the
  // scan begins — after the cursor passed it: the mismatch IS caught.
  platform.memory().poke(10, std::vector<std::uint8_t>{0xFF});
  std::uint64_t got = 0;
  intro.scan_async(5, 0, 1 << 20, [&](const ScanResult& r) { got = r.digest; });
  platform.engine().schedule_at(sim::Time::from_us(500), [&] {
    platform.memory().write(platform.engine().now(), 10,
                            std::vector<std::uint8_t>{0x00});
  });
  platform.engine().run_until(sim::Time::from_ms(100));
  EXPECT_NE(got, clean) << "cursor passed byte 10 before the recovery";
}

TEST(Introspector, EarlyRecoveryEscapesDetection) {
  hw::Platform platform;
  Introspector intro(platform);
  const std::vector<std::uint8_t> benign(1 << 20, 0x00);
  const std::uint64_t clean = intro.digest_reference(benign);
  // Corrupt a byte near the END; recover it before the cursor arrives.
  const std::size_t off = (1 << 20) - 5;
  platform.memory().poke(off, std::vector<std::uint8_t>{0xFF});
  std::uint64_t got = 0;
  intro.scan_async(5, 0, 1 << 20, [&](const ScanResult& r) { got = r.digest; });
  platform.engine().schedule_at(sim::Time::from_us(500), [&] {
    platform.memory().write(platform.engine().now(), off,
                            std::vector<std::uint8_t>{0x00});
  });
  platform.engine().run_until(sim::Time::from_ms(100));
  EXPECT_EQ(got, clean) << "byte recovered before the cursor reached it";
}

TEST(Introspector, StrategyNames) {
  EXPECT_STREQ(to_string(ScanStrategy::kDirectHash), "direct-hash");
  EXPECT_STREQ(to_string(ScanStrategy::kSnapshotThenHash), "snapshot");
}

// --- Digest cache integration ------------------------------------------
//
// The incremental cache must be invisible in every digest: repeated clean
// scans, raced scans and fault-glitched scans all return exactly what a
// cache-off run (and the byte reference) returns.

TEST(Introspector, RepeatedCleanScansHitTheCacheWithIdenticalDigests) {
  hw::Platform on_platform, off_platform;
  std::vector<std::uint8_t> data(8192);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 13 + 1);
  }
  on_platform.memory().poke(0, data);
  off_platform.memory().poke(0, data);
  Introspector on(on_platform), off(off_platform);
  off.digest_cache().set_enabled(false);
  const std::uint64_t reference = on.digest_reference(data);
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(scan_once(on_platform, on, 0, data.size()), reference) << round;
    EXPECT_EQ(scan_once(off_platform, off, 0, data.size()), reference) << round;
  }
  // Warm rounds were served from the cache — and the shadow (off) cache
  // did the identical bookkeeping, as the CI on-vs-off gate expects.
  EXPECT_GT(on.digest_cache().stats().hits, 0u);
  EXPECT_EQ(on.digest_cache().stats().hits, off.digest_cache().stats().hits);
  EXPECT_EQ(on.digest_cache().stats().misses,
            off.digest_cache().stats().misses);
}

TEST(Introspector, RacedScanBypassesTheCacheAndMatchesCacheOff) {
  // Script: warm the cache with a clean pass, then re-run the
  // write-behind-cursor race from above, then a final clean pass. The
  // raced round must bypass the cache (its view is a materialized private
  // copy) and the final round must be unpoisoned by it.
  auto run = [](Introspector& intro, hw::Platform& platform) {
    std::vector<std::uint64_t> digests;
    digests.push_back(scan_once(platform, intro, 0, 1 << 20));
    platform.memory().poke(10, std::vector<std::uint8_t>{0xFF});
    std::uint64_t raced = 0;
    intro.scan_async(5, 0, 1 << 20,
                     [&](const ScanResult& r) { raced = r.digest; });
    platform.engine().schedule_at(
        platform.engine().now() + sim::Duration::from_us(500), [&] {
          platform.memory().write(platform.engine().now(), 10,
                                  std::vector<std::uint8_t>{0x00});
        });
    platform.engine().run_until(platform.engine().now() +
                                sim::Duration::from_ms(200));
    digests.push_back(raced);
    digests.push_back(scan_once(platform, intro, 0, 1 << 20));
    return digests;
  };
  hw::Platform on_platform, off_platform;
  Introspector on(on_platform), off(off_platform);
  off.digest_cache().set_enabled(false);
  const auto d_on = run(on, on_platform);
  const auto d_off = run(off, off_platform);
  ASSERT_EQ(d_on.size(), 3u);
  EXPECT_EQ(d_on, d_off);
  // Byte references: the raced view is 0xFF at byte 10 (the recovery
  // landed behind the cursor), the clean passes see all zeros.
  std::vector<std::uint8_t> clean(1 << 20, 0x00);
  std::vector<std::uint8_t> corrupt = clean;
  corrupt[10] = 0xFF;
  EXPECT_EQ(d_on[0], on.digest_reference(clean));
  EXPECT_EQ(d_on[1], on.digest_reference(corrupt));
  EXPECT_EQ(d_on[2], on.digest_reference(clean));
  EXPECT_EQ(on.digest_cache().stats().bypasses, 1u);
  EXPECT_EQ(off.digest_cache().stats().bypasses, 1u);
}

namespace {
// Flips one bit of one scan-view byte, once; inert afterwards.
class GlitchOnceHooks : public hw::FaultHooks {
 public:
  explicit GlitchOnceHooks(std::size_t pos) : pos_(pos) {}
  hw::TimerFaultDecision on_program_secure(hw::CoreId, sim::Time) override {
    return {};
  }
  bool drop_secure_irq(hw::CoreId, hw::IrqId) override { return false; }
  bool fail_secure_entry(hw::CoreId) override { return false; }
  void corrupt_scan_view(sim::Time, std::size_t offset,
                         std::vector<std::uint8_t>& view) override {
    if (armed_ && pos_ >= offset && pos_ - offset < view.size()) {
      view[pos_ - offset] ^= 0x01;
      armed_ = false;
    }
  }

 private:
  std::size_t pos_;
  bool armed_ = true;
};
}  // namespace

TEST(Introspector, FaultGlitchedScanBypassesTheCacheAndMatchesCacheOff) {
  auto run = [](Introspector& intro, hw::Platform& platform) {
    std::vector<std::uint64_t> digests;
    digests.push_back(scan_once(platform, intro, 0, 4096));  // warm
    GlitchOnceHooks hooks(600);
    platform.memory().set_fault_hooks(&hooks);
    digests.push_back(scan_once(platform, intro, 0, 4096));  // glitched
    platform.memory().set_fault_hooks(nullptr);
    digests.push_back(scan_once(platform, intro, 0, 4096));  // clean again
    return digests;
  };
  std::vector<std::uint8_t> data(4096);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 5);
  }
  hw::Platform on_platform, off_platform;
  on_platform.memory().poke(0, data);
  off_platform.memory().poke(0, data);
  Introspector on(on_platform), off(off_platform);
  off.digest_cache().set_enabled(false);
  const auto d_on = run(on, on_platform);
  const auto d_off = run(off, off_platform);
  EXPECT_EQ(d_on, d_off);
  // The glitch flipped bit 0 of byte 600 in the *observed* view only; the
  // backing bytes never changed, so the third pass is clean again — the
  // cache must not have learned the glitched digest.
  std::vector<std::uint8_t> glitched = data;
  glitched[600] ^= 0x01;
  EXPECT_EQ(d_on[0], on.digest_reference(data));
  EXPECT_EQ(d_on[1], on.digest_reference(glitched));
  EXPECT_EQ(d_on[2], on.digest_reference(data));
  EXPECT_EQ(on.digest_cache().stats().bypasses, 1u);
}

TEST(AuthorizedStore, AuthorizeLookupMatch) {
  AuthorizedStore store;
  store.authorize("area/3", 0xABCD);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.lookup("area/3"), 0xABCDu);
  EXPECT_FALSE(store.lookup("area/4").has_value());
  EXPECT_TRUE(store.matches("area/3", 0xABCD));
  EXPECT_FALSE(store.matches("area/3", 0xABCE));
}

TEST(AuthorizedStore, MissingKeyFailsClosed) {
  AuthorizedStore store;
  EXPECT_FALSE(store.matches("area/0", 0));
}

TEST(AuthorizedStore, ReauthorizationRejected) {
  AuthorizedStore store;
  store.authorize("area/0", 1);
  EXPECT_THROW(store.authorize("area/0", 2), std::logic_error);
}

}  // namespace
}  // namespace satin::secure
