#include "secure/hash.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace satin::secure {
namespace {

std::vector<std::uint8_t> ascii(const char* s) {
  std::vector<std::uint8_t> out;
  for (const char* p = s; *p != '\0'; ++p) {
    out.push_back(static_cast<std::uint8_t>(*p));
  }
  return out;
}

TEST(Hash, Djb2KnownValues) {
  // djb2: h = 5381; h = h*33 + c.
  EXPECT_EQ(hash_djb2({}), 5381u);
  const auto a = ascii("a");
  EXPECT_EQ(hash_djb2(a), 5381u * 33 + 'a');
}

TEST(Hash, Fnv1aKnownValues) {
  EXPECT_EQ(hash_fnv1a({}), 14695981039346656037ull);
  // FNV-1a("a") — published test vector.
  const auto a = ascii("a");
  EXPECT_EQ(hash_fnv1a(a), 0xAF63DC4C8601EC8Cull);
}

TEST(Hash, SdbmEmptyIsZero) { EXPECT_EQ(hash_sdbm({}), 0u); }

TEST(Hash, SingleByteChangesDigest) {
  std::vector<std::uint8_t> data(4096, 0x41);
  const std::uint64_t d0 = hash_djb2(data);
  const std::uint64_t f0 = hash_fnv1a(data);
  const std::uint64_t s0 = hash_sdbm(data);
  data[2048] ^= 0x01;
  EXPECT_NE(hash_djb2(data), d0);
  EXPECT_NE(hash_fnv1a(data), f0);
  EXPECT_NE(hash_sdbm(data), s0);
}

TEST(Hash, OrderMatters) {
  const auto ab = ascii("ab");
  const auto ba = ascii("ba");
  EXPECT_NE(hash_djb2(ab), hash_djb2(ba));
}

TEST(Hash, DispatcherMatchesDirectCalls) {
  const auto data = ascii("satin");
  EXPECT_EQ(hash_bytes(HashKind::kDjb2, data), hash_djb2(data));
  EXPECT_EQ(hash_bytes(HashKind::kSdbm, data), hash_sdbm(data));
  EXPECT_EQ(hash_bytes(HashKind::kFnv1a, data), hash_fnv1a(data));
}

// The word-at-a-time fast paths must be digest-identical to the textbook
// byte loops — randomized lengths cover every remainder mod 8, plus the
// unaligned-tail and all-0x00/0xFF edge cases.
TEST(Hash, FastPathsMatchReferencesOnRandomInputs) {
  sim::Rng rng(0xD1FF);
  for (int round = 0; round < 200; ++round) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 1000));
    std::vector<std::uint8_t> data(size);
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    ASSERT_EQ(hash_djb2(data), hash_djb2_reference(data)) << "size=" << size;
    ASSERT_EQ(hash_sdbm(data), hash_sdbm_reference(data)) << "size=" << size;
    ASSERT_EQ(hash_fnv1a(data), hash_fnv1a_reference(data))
        << "size=" << size;
  }
}

TEST(Hash, FastPathsMatchReferencesOnEdgeLengths) {
  for (std::size_t size : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u, 63u, 64u}) {
    std::vector<std::uint8_t> zeros(size, 0x00);
    std::vector<std::uint8_t> ones(size, 0xFF);
    EXPECT_EQ(hash_djb2(zeros), hash_djb2_reference(zeros)) << size;
    EXPECT_EQ(hash_djb2(ones), hash_djb2_reference(ones)) << size;
    EXPECT_EQ(hash_sdbm(zeros), hash_sdbm_reference(zeros)) << size;
    EXPECT_EQ(hash_sdbm(ones), hash_sdbm_reference(ones)) << size;
    EXPECT_EQ(hash_fnv1a(zeros), hash_fnv1a_reference(zeros)) << size;
    EXPECT_EQ(hash_fnv1a(ones), hash_fnv1a_reference(ones)) << size;
  }
}

TEST(Hash, KindNames) {
  EXPECT_STREQ(to_string(HashKind::kDjb2), "djb2");
  EXPECT_STREQ(to_string(HashKind::kSdbm), "sdbm");
  EXPECT_STREQ(to_string(HashKind::kFnv1a), "fnv1a");
}

}  // namespace
}  // namespace satin::secure
