#include "secure/hash.h"

#include <gtest/gtest.h>

namespace satin::secure {
namespace {

std::vector<std::uint8_t> ascii(const char* s) {
  std::vector<std::uint8_t> out;
  for (const char* p = s; *p != '\0'; ++p) {
    out.push_back(static_cast<std::uint8_t>(*p));
  }
  return out;
}

TEST(Hash, Djb2KnownValues) {
  // djb2: h = 5381; h = h*33 + c.
  EXPECT_EQ(hash_djb2({}), 5381u);
  const auto a = ascii("a");
  EXPECT_EQ(hash_djb2(a), 5381u * 33 + 'a');
}

TEST(Hash, Fnv1aKnownValues) {
  EXPECT_EQ(hash_fnv1a({}), 14695981039346656037ull);
  // FNV-1a("a") — published test vector.
  const auto a = ascii("a");
  EXPECT_EQ(hash_fnv1a(a), 0xAF63DC4C8601EC8Cull);
}

TEST(Hash, SdbmEmptyIsZero) { EXPECT_EQ(hash_sdbm({}), 0u); }

TEST(Hash, SingleByteChangesDigest) {
  std::vector<std::uint8_t> data(4096, 0x41);
  const std::uint64_t d0 = hash_djb2(data);
  const std::uint64_t f0 = hash_fnv1a(data);
  const std::uint64_t s0 = hash_sdbm(data);
  data[2048] ^= 0x01;
  EXPECT_NE(hash_djb2(data), d0);
  EXPECT_NE(hash_fnv1a(data), f0);
  EXPECT_NE(hash_sdbm(data), s0);
}

TEST(Hash, OrderMatters) {
  const auto ab = ascii("ab");
  const auto ba = ascii("ba");
  EXPECT_NE(hash_djb2(ab), hash_djb2(ba));
}

TEST(Hash, DispatcherMatchesDirectCalls) {
  const auto data = ascii("satin");
  EXPECT_EQ(hash_bytes(HashKind::kDjb2, data), hash_djb2(data));
  EXPECT_EQ(hash_bytes(HashKind::kSdbm, data), hash_sdbm(data));
  EXPECT_EQ(hash_bytes(HashKind::kFnv1a, data), hash_fnv1a(data));
}

TEST(Hash, KindNames) {
  EXPECT_STREQ(to_string(HashKind::kDjb2), "djb2");
  EXPECT_STREQ(to_string(HashKind::kSdbm), "sdbm");
  EXPECT_STREQ(to_string(HashKind::kFnv1a), "fnv1a");
}

}  // namespace
}  // namespace satin::secure
