#include "secure/hash.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/rng.h"

namespace satin::secure {
namespace {

std::vector<std::uint8_t> ascii(const char* s) {
  std::vector<std::uint8_t> out;
  for (const char* p = s; *p != '\0'; ++p) {
    out.push_back(static_cast<std::uint8_t>(*p));
  }
  return out;
}

TEST(Hash, Djb2KnownValues) {
  // djb2: h = 5381; h = h*33 + c.
  EXPECT_EQ(hash_djb2({}), 5381u);
  const auto a = ascii("a");
  EXPECT_EQ(hash_djb2(a), 5381u * 33 + 'a');
}

TEST(Hash, Fnv1aKnownValues) {
  EXPECT_EQ(hash_fnv1a({}), 14695981039346656037ull);
  // FNV-1a("a") — published test vector.
  const auto a = ascii("a");
  EXPECT_EQ(hash_fnv1a(a), 0xAF63DC4C8601EC8Cull);
}

TEST(Hash, SdbmEmptyIsZero) { EXPECT_EQ(hash_sdbm({}), 0u); }

TEST(Hash, SingleByteChangesDigest) {
  std::vector<std::uint8_t> data(4096, 0x41);
  const std::uint64_t d0 = hash_djb2(data);
  const std::uint64_t f0 = hash_fnv1a(data);
  const std::uint64_t s0 = hash_sdbm(data);
  data[2048] ^= 0x01;
  EXPECT_NE(hash_djb2(data), d0);
  EXPECT_NE(hash_fnv1a(data), f0);
  EXPECT_NE(hash_sdbm(data), s0);
}

TEST(Hash, OrderMatters) {
  const auto ab = ascii("ab");
  const auto ba = ascii("ba");
  EXPECT_NE(hash_djb2(ab), hash_djb2(ba));
}

TEST(Hash, DispatcherMatchesDirectCalls) {
  const auto data = ascii("satin");
  EXPECT_EQ(hash_bytes(HashKind::kDjb2, data), hash_djb2(data));
  EXPECT_EQ(hash_bytes(HashKind::kSdbm, data), hash_sdbm(data));
  EXPECT_EQ(hash_bytes(HashKind::kFnv1a, data), hash_fnv1a(data));
}

// The word-at-a-time fast paths must be digest-identical to the textbook
// byte loops — randomized lengths cover every remainder mod 8, plus the
// unaligned-tail and all-0x00/0xFF edge cases.
TEST(Hash, FastPathsMatchReferencesOnRandomInputs) {
  sim::Rng rng(0xD1FF);
  for (int round = 0; round < 200; ++round) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 1000));
    std::vector<std::uint8_t> data(size);
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    ASSERT_EQ(hash_djb2(data), hash_djb2_reference(data)) << "size=" << size;
    ASSERT_EQ(hash_sdbm(data), hash_sdbm_reference(data)) << "size=" << size;
    ASSERT_EQ(hash_fnv1a(data), hash_fnv1a_reference(data))
        << "size=" << size;
  }
}

TEST(Hash, FastPathsMatchReferencesOnEdgeLengths) {
  for (std::size_t size : {0u, 1u, 7u, 8u, 9u, 15u, 16u, 17u, 63u, 64u}) {
    std::vector<std::uint8_t> zeros(size, 0x00);
    std::vector<std::uint8_t> ones(size, 0xFF);
    EXPECT_EQ(hash_djb2(zeros), hash_djb2_reference(zeros)) << size;
    EXPECT_EQ(hash_djb2(ones), hash_djb2_reference(ones)) << size;
    EXPECT_EQ(hash_sdbm(zeros), hash_sdbm_reference(zeros)) << size;
    EXPECT_EQ(hash_sdbm(ones), hash_sdbm_reference(ones)) << size;
    EXPECT_EQ(hash_fnv1a(zeros), hash_fnv1a_reference(zeros)) << size;
    EXPECT_EQ(hash_fnv1a(ones), hash_fnv1a_reference(ones)) << size;
  }
}

TEST(Hash, KindNames) {
  EXPECT_STREQ(to_string(HashKind::kDjb2), "djb2");
  EXPECT_STREQ(to_string(HashKind::kSdbm), "sdbm");
  EXPECT_STREQ(to_string(HashKind::kFnv1a), "fnv1a");
}

constexpr HashKind kAllKinds[] = {HashKind::kDjb2, HashKind::kSdbm,
                                  HashKind::kFnv1a};

TEST(Hash, SeedIsDigestOfEmptyInput) {
  for (HashKind kind : kAllKinds) {
    EXPECT_EQ(hash_seed(kind), hash_bytes(kind, {})) << to_string(kind);
    // Resuming with nothing is the identity.
    EXPECT_EQ(hash_resume(kind, 0xDEADBEEFull, {}), 0xDEADBEEFull);
  }
}

TEST(Hash, ResumeMatchesWholeOnOneSplit) {
  const auto data = ascii("the quick brown fox jumps over the lazy dog");
  for (HashKind kind : kAllKinds) {
    const std::uint64_t whole = hash_bytes(kind, data);
    for (std::size_t cut = 0; cut <= data.size(); ++cut) {
      const std::span<const std::uint8_t> a(data.data(), cut);
      const std::span<const std::uint8_t> b(data.data() + cut,
                                            data.size() - cut);
      EXPECT_EQ(hash_resume(kind, hash_bytes(kind, a), b), whole)
          << to_string(kind) << " cut=" << cut;
    }
  }
}

// The digest cache's algebra: H(c0‖c1‖...‖cK) folded chunk by chunk from
// the seed must equal the whole-buffer digest, for every kind, any number
// of segments and any (randomized) split points — including empty
// segments and splits off word boundaries.
TEST(Hash, ResumableFoldMatchesReferencesOnRandomSplits) {
  sim::Rng rng(0x5EED5);
  for (int round = 0; round < 200; ++round) {
    const auto size = static_cast<std::size_t>(rng.uniform_int(0, 2000));
    std::vector<std::uint8_t> data(size);
    for (auto& b : data) {
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const int cuts = static_cast<int>(rng.uniform_int(0, 6));
    std::vector<std::size_t> bounds{0, size};
    for (int i = 0; i < cuts; ++i) {
      bounds.push_back(
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(size))));
    }
    std::sort(bounds.begin(), bounds.end());
    for (HashKind kind : kAllKinds) {
      std::uint64_t state = hash_seed(kind);
      for (std::size_t i = 0; i + 1 < bounds.size(); ++i) {
        state = hash_resume(
            kind, state,
            std::span<const std::uint8_t>(data.data() + bounds[i],
                                          bounds[i + 1] - bounds[i]));
      }
      ASSERT_EQ(state, hash_bytes(kind, data))
          << to_string(kind) << " size=" << size << " segments="
          << bounds.size() - 1;
    }
  }
}

TEST(Hash, PerKindResumeMatchesDispatcher) {
  const auto a = ascii("satin-");
  const auto b = ascii("resume");
  EXPECT_EQ(hash_djb2_resume(hash_djb2(a), b),
            hash_resume(HashKind::kDjb2, hash_djb2(a), b));
  EXPECT_EQ(hash_sdbm_resume(hash_sdbm(a), b),
            hash_resume(HashKind::kSdbm, hash_sdbm(a), b));
  EXPECT_EQ(hash_fnv1a_resume(hash_fnv1a(a), b),
            hash_resume(HashKind::kFnv1a, hash_fnv1a(a), b));
}

}  // namespace
}  // namespace satin::secure
