// The incremental digest cache: exactness against the byte reference,
// generation-driven invalidation, shadow-mode identity and the bypass
// rule for untrusted (raced/faulted) views.
#include "secure/digest_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "secure/hash.h"
#include "sim/rng.h"
#include "sim/time.h"

namespace satin::secure {
namespace {

constexpr HashKind kAllKinds[] = {HashKind::kDjb2, HashKind::kSdbm,
                                  HashKind::kFnv1a};

// Fills memory with a deterministic pseudo-random pattern via poke.
void scribble(hw::Memory& mem, std::uint64_t seed) {
  sim::Rng rng(seed);
  std::vector<std::uint8_t> data(mem.size());
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  mem.poke(0, data);
}

std::span<const std::uint8_t> window(const hw::Memory& mem, std::size_t offset,
                                     std::size_t length) {
  return mem.bytes().subspan(offset, length);
}

TEST(DigestCache, ColdRoundMissesEveryChunkAndMatchesReference) {
  for (HashKind kind : kAllKinds) {
    hw::Memory mem(1000);  // 4 chunks, ragged 232-byte tail
    scribble(mem, 42);
    DigestCache cache(kind, /*enabled=*/true);
    const auto out = cache.round_digest(mem, 0, window(mem, 0, 1000), true);
    EXPECT_FALSE(out.bypassed);
    EXPECT_EQ(out.chunk_hits, 0u);
    EXPECT_EQ(out.chunk_misses, 4u);
    EXPECT_EQ(out.chunk_invalidations, 0u);
    EXPECT_EQ(out.bytes_hashed, 1000u);
    EXPECT_EQ(out.bytes_skipped, 0u);
    EXPECT_EQ(out.digest, hash_bytes(kind, window(mem, 0, 1000)))
        << to_string(kind);
  }
}

TEST(DigestCache, WarmCleanRoundIsAllHits) {
  hw::Memory mem(1024);
  scribble(mem, 7);
  DigestCache cache(HashKind::kFnv1a, true);
  const auto cold = cache.round_digest(mem, 0, window(mem, 0, 1024), true);
  const auto warm = cache.round_digest(mem, 0, window(mem, 0, 1024), true);
  EXPECT_EQ(warm.chunk_hits, 4u);
  EXPECT_EQ(warm.chunk_misses, 0u);
  EXPECT_EQ(warm.bytes_skipped, 1024u);
  EXPECT_EQ(warm.bytes_hashed, 0u);
  EXPECT_EQ(warm.digest, cold.digest);
  EXPECT_EQ(cache.stats().rounds, 2u);
  EXPECT_EQ(cache.stats().hits, 4u);
  EXPECT_EQ(cache.stats().misses, 4u);
}

TEST(DigestCache, DirtyChunkInvalidatesItselfAndCascadesTheSuffix) {
  hw::Memory mem(1024);
  scribble(mem, 11);
  DigestCache cache(HashKind::kDjb2, true);
  (void)cache.round_digest(mem, 0, window(mem, 0, 1024), true);
  // Flip one byte in chunk 1: its generation moves, and because its bytes
  // (hence its outgoing state) change, chunks 2 and 3 see a different
  // incoming state and re-hash too. Chunk 0 alone survives.
  std::vector<std::uint8_t> flip{
      static_cast<std::uint8_t>(mem.read(300) ^ 0xFF)};
  mem.poke(300, flip);
  const auto out = cache.round_digest(mem, 0, window(mem, 0, 1024), true);
  EXPECT_EQ(out.chunk_hits, 1u);
  EXPECT_EQ(out.chunk_misses, 3u);
  EXPECT_EQ(out.chunk_invalidations, 1u);  // only the gen-dirty chunk
  EXPECT_EQ(out.bytes_hashed, 768u);
  EXPECT_EQ(out.bytes_skipped, 256u);
  EXPECT_EQ(out.digest, hash_bytes(HashKind::kDjb2, window(mem, 0, 1024)));
}

TEST(DigestCache, RewritingIdenticalBytesRecachesOnlyThatChunk) {
  hw::Memory mem(1024);
  scribble(mem, 13);
  DigestCache cache(HashKind::kSdbm, true);
  const auto cold = cache.round_digest(mem, 0, window(mem, 0, 1024), true);
  // Rewrite chunk 1 with its own bytes: the generation moves (forcing a
  // re-hash of that chunk) but its outgoing state is unchanged, so the
  // suffix chunks still hit — the cascade stops where the states re-join.
  std::vector<std::uint8_t> same(window(mem, 256, 256).begin(),
                                 window(mem, 256, 256).end());
  mem.poke(256, same);
  const auto out = cache.round_digest(mem, 0, window(mem, 0, 1024), true);
  EXPECT_EQ(out.chunk_hits, 3u);
  EXPECT_EQ(out.chunk_misses, 1u);
  EXPECT_EQ(out.chunk_invalidations, 1u);
  EXPECT_EQ(out.digest, cold.digest);
}

TEST(DigestCache, WritesOutsideTheAreaKeepTheFastPath) {
  hw::Memory mem(2048);
  scribble(mem, 17);
  DigestCache cache(HashKind::kFnv1a, true);
  (void)cache.round_digest(mem, 0, window(mem, 0, 512), true);
  mem.poke(1024, std::vector<std::uint8_t>{0xEE});  // outside [0, 512)
  const auto out = cache.round_digest(mem, 0, window(mem, 0, 512), true);
  // Global generation moved, but the area's range-max did not: the round
  // is served from the cached area digest without a chunk walk.
  EXPECT_EQ(out.chunk_hits, 2u);
  EXPECT_EQ(out.bytes_skipped, 512u);
  EXPECT_EQ(out.digest, hash_bytes(HashKind::kFnv1a, window(mem, 0, 512)));
}

TEST(DigestCache, SubAreaAtNonZeroOffsetHashesItsOwnWindow) {
  hw::Memory mem(2048);
  scribble(mem, 19);
  DigestCache cache(HashKind::kDjb2, true);
  const auto out = cache.round_digest(mem, 768, window(mem, 768, 600), true);
  EXPECT_EQ(out.digest, hash_bytes(HashKind::kDjb2, window(mem, 768, 600)));
  const auto warm = cache.round_digest(mem, 768, window(mem, 768, 600), true);
  EXPECT_EQ(warm.chunk_misses, 0u);
  EXPECT_EQ(warm.digest, out.digest);
  // Dirtying the window from outside the cache's view of the world (an
  // ordinary timed write) is still caught via the generations.
  mem.write(sim::Time::zero(), 800, std::vector<std::uint8_t>{0x5A});
  const auto redo = cache.round_digest(mem, 768, window(mem, 768, 600), true);
  EXPECT_GT(redo.chunk_misses, 0u);
  EXPECT_EQ(redo.digest, hash_bytes(HashKind::kDjb2, window(mem, 768, 600)));
}

TEST(DigestCache, UntrustedViewBypassesAndDoesNotPolluteTheCache) {
  hw::Memory mem(1024);
  scribble(mem, 23);
  DigestCache cache(HashKind::kFnv1a, true);
  const auto cold = cache.round_digest(mem, 0, window(mem, 0, 1024), true);
  // A materialized (raced/faulted) view with different bytes: hashed in
  // full, counted as a bypass, and the cache must not learn from it.
  std::vector<std::uint8_t> raced(window(mem, 0, 1024).begin(),
                                  window(mem, 0, 1024).end());
  raced[512] ^= 0x01;
  const auto bypass = cache.round_digest(mem, 0, raced, false);
  EXPECT_TRUE(bypass.bypassed);
  EXPECT_EQ(bypass.chunk_hits, 0u);
  EXPECT_EQ(bypass.chunk_misses, 0u);
  EXPECT_EQ(bypass.bytes_hashed, 1024u);
  EXPECT_EQ(bypass.digest, hash_bytes(HashKind::kFnv1a, raced));
  EXPECT_NE(bypass.digest, cold.digest);
  EXPECT_EQ(cache.stats().bypasses, 1u);
  // The next trusted round still serves the pristine digest from cache.
  const auto after = cache.round_digest(mem, 0, window(mem, 0, 1024), true);
  EXPECT_EQ(after.chunk_misses, 0u);
  EXPECT_EQ(after.digest, cold.digest);
}

TEST(DigestCache, ShadowModeKeepsCountersAndDigestsIdentical) {
  // Two memories with identical histories, one enabled cache, one shadow
  // (--digest-cache=off). Every round outcome must agree bit for bit —
  // this is the on-vs-off identity the CI gate enforces end to end.
  hw::Memory mem_on(1024), mem_off(1024);
  scribble(mem_on, 29);
  scribble(mem_off, 29);
  DigestCache on(HashKind::kDjb2, true);
  DigestCache off(HashKind::kDjb2, false);
  EXPECT_TRUE(on.enabled());
  EXPECT_FALSE(off.enabled());
  auto step = [&](std::size_t offset, std::size_t length, bool trusted) {
    const auto a = on.round_digest(mem_on, offset,
                                   window(mem_on, offset, length), trusted);
    const auto b = off.round_digest(mem_off, offset,
                                    window(mem_off, offset, length), trusted);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.chunk_hits, b.chunk_hits);
    EXPECT_EQ(a.chunk_misses, b.chunk_misses);
    EXPECT_EQ(a.chunk_invalidations, b.chunk_invalidations);
    EXPECT_EQ(a.bytes_hashed, b.bytes_hashed);
    EXPECT_EQ(a.bytes_skipped, b.bytes_skipped);
    EXPECT_EQ(a.bypassed, b.bypassed);
  };
  step(0, 1024, true);   // cold
  step(0, 1024, true);   // warm fast path
  std::vector<std::uint8_t> poke_bytes{0x77};
  mem_on.poke(600, poke_bytes);
  mem_off.poke(600, poke_bytes);
  step(0, 1024, true);   // partial invalidation
  step(0, 512, true);    // second (sub-)area, cold
  step(0, 1024, false);  // bypass
  EXPECT_EQ(on.stats().hits, off.stats().hits);
  EXPECT_EQ(on.stats().misses, off.stats().misses);
  EXPECT_EQ(on.stats().bypasses, off.stats().bypasses);
}

TEST(DigestCache, RegisterAreaPresizesTables) {
  hw::Memory mem(4096);
  DigestCache cache(HashKind::kFnv1a, true);
  EXPECT_EQ(cache.area_count(), 0u);
  cache.register_area(0, 1024);
  cache.register_area(1024, 512);
  cache.register_area(0, 1024);  // idempotent
  EXPECT_EQ(cache.area_count(), 2u);
}

TEST(DigestCache, DefaultFlagGovernsNewCaches) {
  const bool saved = digest_cache_default();
  set_digest_cache_default(false);
  DigestCache off_by_default(HashKind::kDjb2);
  EXPECT_FALSE(off_by_default.enabled());
  set_digest_cache_default(true);
  DigestCache on_by_default(HashKind::kDjb2);
  EXPECT_TRUE(on_by_default.enabled());
  set_digest_cache_default(saved);
}

TEST(DigestCache, ZeroChunkSizeIsRejected) {
  EXPECT_THROW(DigestCache(HashKind::kDjb2, true, 0), std::invalid_argument);
}

// Property sweep: random pokes between rounds, every round's digest must
// equal the byte reference for all kinds. This is the cache's whole
// contract in one loop.
TEST(DigestCache, RandomizedRoundsAlwaysMatchTheByteReference) {
  for (HashKind kind : kAllKinds) {
    hw::Memory mem(3000);
    scribble(mem, 0xCAFE);
    DigestCache cache(kind, true);
    sim::Rng rng(0xBEEF);
    for (int round = 0; round < 50; ++round) {
      const int pokes = static_cast<int>(rng.uniform_int(0, 3));
      for (int p = 0; p < pokes; ++p) {
        const auto at = static_cast<std::size_t>(rng.uniform_int(0, 2999));
        std::vector<std::uint8_t> b{
            static_cast<std::uint8_t>(rng.uniform_int(0, 255))};
        mem.poke(at, b);
      }
      const auto out = cache.round_digest(mem, 0, window(mem, 0, 3000), true);
      ASSERT_EQ(out.digest, hash_bytes(kind, window(mem, 0, 3000)))
          << to_string(kind) << " round=" << round;
    }
    EXPECT_GT(cache.stats().hits, 0u);
  }
}

}  // namespace
}  // namespace satin::secure
