#include "workload/unixbench.h"

#include <gtest/gtest.h>

#include "core/satin.h"
#include "scenario/scenario.h"

namespace satin::workload {
namespace {

using sim::Duration;

TEST(UnixBenchSuite, HasTheTwelveFig7Programs) {
  const auto& suite = unixbench_suite();
  ASSERT_EQ(suite.size(), 12u);
  EXPECT_EQ(suite[0].name, "dhrystone2");
  EXPECT_EQ(suite[3].name, "file_copy_256B");
  EXPECT_EQ(suite[7].name, "context_switching");
}

TEST(UnixBenchSuite, WorstTwoArePipeAndBufferHeavyTests) {
  // Fig. 7's calibration: file copy 256B and context switching carry the
  // largest disruption penalties.
  const auto& suite = unixbench_suite();
  auto penalty = [&](const std::string& name) {
    for (const auto& w : suite) {
      if (w.name == name) return w.disruption_penalty;
    }
    ADD_FAILURE() << name;
    return Duration::zero();
  };
  const Duration fc = penalty("file_copy_256B");
  const Duration cs = penalty("context_switching");
  for (const auto& w : suite) {
    if (w.name == "file_copy_256B" || w.name == "context_switching") continue;
    EXPECT_LT(w.disruption_penalty, fc) << w.name;
    EXPECT_LT(w.disruption_penalty, cs) << w.name;
  }
  EXPECT_GT(cs, fc);  // context switching is the single worst bar
}

TEST(WorkloadThread, CountsIterations) {
  scenario::Scenario s;
  auto* t = static_cast<WorkloadThread*>(s.os().add_thread(
      std::make_unique<WorkloadThread>(unixbench_suite()[0])));
  s.run_for(Duration::from_sec(1));
  // dhrystone: 100 us per iteration on a dedicated core ~ 10k/s.
  EXPECT_NEAR(static_cast<double>(t->iterations()), 10'000, 300);
}

TEST(WorkloadThread, StopRequestExits) {
  scenario::Scenario s;
  auto* t = static_cast<WorkloadThread*>(s.os().add_thread(
      std::make_unique<WorkloadThread>(unixbench_suite()[0])));
  s.run_for(Duration::from_ms(100));
  t->request_stop();
  s.run_for(Duration::from_ms(10));
  EXPECT_TRUE(t->stopped());
  const auto iters = t->iterations();
  s.run_for(Duration::from_ms(100));
  EXPECT_EQ(t->iterations(), iters);
}

TEST(WorkloadThread, PenaltyConsumesTimeWithoutCounting) {
  scenario::Scenario s;
  auto* t = static_cast<WorkloadThread*>(s.os().add_thread(
      std::make_unique<WorkloadThread>(unixbench_suite()[0])));
  s.run_for(Duration::from_ms(500));
  const auto before = t->iterations();
  t->add_penalty(Duration::from_ms(200));
  s.run_for(Duration::from_ms(500));
  const auto gained = t->iterations() - before;
  // ~300 ms of useful time out of 500 -> ~3000 iterations instead of 5000.
  EXPECT_NEAR(static_cast<double>(gained), 3000, 200);
}

TEST(Harness, BaselineSuiteScoresArePositiveAndStable) {
  scenario::Scenario s;
  UnixBenchHarness harness(s.os());
  const auto results = harness.run_suite(Duration::from_sec(2), 1);
  ASSERT_EQ(results.size(), 12u);
  for (const auto& r : results) {
    EXPECT_GT(r.score, 0.0) << r.name;
  }
  // Scores reflect iteration costs: dhrystone (100 us) ~ 2x whetstone?
  // no — simply check ordering against cost.
  EXPECT_GT(results[0].score, results[9].score);  // 100us beats 5ms shell
}

TEST(Harness, CompareRunsComputesDegradation) {
  std::vector<UnixBenchHarness::Result> base{{"a", 100.0}, {"b", 50.0}};
  std::vector<UnixBenchHarness::Result> with{{"a", 99.0}, {"b", 48.0}};
  const auto rows = compare_runs(base, with);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_NEAR(rows[0].degradation, 0.01, 1e-12);
  EXPECT_NEAR(rows[1].degradation, 0.04, 1e-12);
  EXPECT_NEAR(mean_degradation(rows), 0.025, 1e-12);
}

TEST(Harness, CompareRunsValidates) {
  std::vector<UnixBenchHarness::Result> base{{"a", 1.0}};
  std::vector<UnixBenchHarness::Result> two{{"a", 1.0}, {"b", 1.0}};
  std::vector<UnixBenchHarness::Result> wrong{{"x", 1.0}};
  EXPECT_THROW(compare_runs(base, two), std::invalid_argument);
  EXPECT_THROW(compare_runs(base, wrong), std::invalid_argument);
}

TEST(Harness, SatinDisruptionReducesSensitiveScores) {
  // A fast-waking SATIN measurably hurts file_copy_256B / context
  // switching while barely touching dhrystone — Fig. 7's shape. Both the
  // introspection and the workload are pinned to core 2 so the per-window
  // intrusion count is deterministic rather than Poisson-sparse.
  auto degradation = [](const WorkloadSpec& spec) {
    auto measure = [&spec](bool with_satin) {
      scenario::Scenario s;
      core::SatinConfig config;
      config.tp_s = 0.5;
      config.multi_core = false;
      config.fixed_core = 2;
      core::Satin satin(s.platform(), s.kernel(), s.tsp(), config);
      if (with_satin) satin.start();
      UnixBenchHarness harness(s.os());  // delivers the exit penalties
      auto thread = std::make_unique<WorkloadThread>(spec);
      thread->pin_to_core(2);
      auto* t =
          static_cast<WorkloadThread*>(s.os().add_thread(std::move(thread)));
      // Keep the harness aware of our thread via a manual suite run? No —
      // deliver penalties directly through a world listener equivalent:
      // the harness only penalizes threads it spawned, so emulate it.
      struct Penalizer : hw::WorldListener {
        WorkloadThread* target;
        void on_secure_entry(hw::CoreId, sim::Time) override {}
        void on_secure_exit(hw::CoreId core, sim::Time) override {
          if (core == target->current_core() && !target->stopped()) {
            target->add_penalty(target->spec().disruption_penalty);
          }
        }
      } penalizer;
      penalizer.target = t;
      s.platform().core(2).add_world_listener(&penalizer);
      s.run_for(Duration::from_sec(5));
      s.platform().core(2).remove_world_listener(&penalizer);
      return static_cast<double>(t->iterations());
    };
    const double base = measure(false);
    const double with = measure(true);
    return 1.0 - with / base;
  };
  const auto& suite = unixbench_suite();
  const double dhrystone = degradation(suite[0]);
  const double fc256 = degradation(suite[3]);
  const double ctx = degradation(suite[7]);
  EXPECT_GT(fc256, 4 * std::max(dhrystone, 1e-4));
  EXPECT_GT(ctx, 4 * std::max(dhrystone, 1e-4));
  EXPECT_LT(dhrystone, 0.03);
}

}  // namespace
}  // namespace satin::workload
