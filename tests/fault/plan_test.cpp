#include "fault/plan.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace satin::fault {
namespace {

using sim::Duration;
using sim::Time;

TEST(FaultPlan, EmptySpecYieldsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::parse("").empty());
  EXPECT_TRUE(FaultPlan::parse("   ").empty());
  EXPECT_TRUE(FaultPlan::parse(" , ,").empty());
}

TEST(FaultPlan, ParsesEveryKind) {
  const FaultPlan plan = FaultPlan::parse(
      "timer-misfire@1s+2s,timer-drift@1s+2s,irq-lost@1s+2s,"
      "irq-spurious@1s+2s,smc-fail@1s+2s,bitflip@1s+2s,core-off@1s+2s");
  ASSERT_EQ(plan.faults.size(), 7u);
  EXPECT_EQ(plan.faults[0].kind, FaultKind::kTimerMisfire);
  EXPECT_EQ(plan.faults[1].kind, FaultKind::kTimerDrift);
  EXPECT_EQ(plan.faults[2].kind, FaultKind::kIrqLost);
  EXPECT_EQ(plan.faults[3].kind, FaultKind::kIrqSpurious);
  EXPECT_EQ(plan.faults[4].kind, FaultKind::kSmcFail);
  EXPECT_EQ(plan.faults[5].kind, FaultKind::kBitFlip);
  EXPECT_EQ(plan.faults[6].kind, FaultKind::kCoreOffline);
}

TEST(FaultPlan, ParsesWindowAndParameters) {
  const FaultPlan plan = FaultPlan::parse(
      "seed=42,timer-drift@1.5s+500ms:core=3:p=0.25:drift=2ms");
  EXPECT_EQ(plan.seed, 42u);
  ASSERT_EQ(plan.faults.size(), 1u);
  const FaultSpec& f = plan.faults[0];
  EXPECT_EQ(f.start, Time::from_ms(1500));
  EXPECT_EQ(f.duration, Duration::from_ms(500));
  EXPECT_EQ(f.end(), Time::from_sec(2));
  EXPECT_EQ(f.core, 3);
  EXPECT_DOUBLE_EQ(f.probability, 0.25);
  EXPECT_EQ(f.drift, Duration::from_ms(2));
}

TEST(FaultPlan, TimeUnitsAndBareSeconds) {
  const FaultPlan plan = FaultPlan::parse(
      "bitflip@250ms+10:flips=3,irq-spurious@1us+900ns:period=50ps");
  ASSERT_EQ(plan.faults.size(), 2u);
  EXPECT_EQ(plan.faults[0].start, Time::from_ms(250));
  EXPECT_EQ(plan.faults[0].duration, Duration::from_sec(10));
  EXPECT_EQ(plan.faults[0].flips, 3);
  EXPECT_EQ(plan.faults[1].start, Time::from_us(1));
  EXPECT_EQ(plan.faults[1].duration, Duration::from_ns(900));
  EXPECT_EQ(plan.faults[1].period, Duration::from_ps(50));
}

TEST(FaultPlan, WindowContainsAndTargets) {
  FaultSpec f;
  f.start = Time::from_sec(10);
  f.duration = Duration::from_sec(5);
  EXPECT_FALSE(f.contains(Time::from_sec_f(9.999)));
  EXPECT_TRUE(f.contains(Time::from_sec(10)));
  EXPECT_TRUE(f.contains(Time::from_sec_f(14.999)));
  EXPECT_FALSE(f.contains(Time::from_sec(15)));  // half-open
  EXPECT_TRUE(f.targets(0));
  EXPECT_TRUE(f.targets(5));
  f.core = 2;
  EXPECT_TRUE(f.targets(2));
  EXPECT_FALSE(f.targets(3));
}

TEST(FaultPlan, RoundTripsThroughToString) {
  const char* spec =
      "seed=7,timer-misfire@10s+30s:p=0.5,bitflip@5s+60s:flips=2,"
      "core-off@20s+15s:core=1,timer-drift@1s+2s:drift=800ms,"
      "irq-spurious@3s+4s:period=250ms";
  const FaultPlan plan = FaultPlan::parse(spec);
  const FaultPlan reparsed = FaultPlan::parse(plan.to_string());
  EXPECT_EQ(reparsed.seed, plan.seed);
  ASSERT_EQ(reparsed.faults.size(), plan.faults.size());
  for (std::size_t i = 0; i < plan.faults.size(); ++i) {
    EXPECT_EQ(reparsed.faults[i].to_string(), plan.faults[i].to_string());
  }
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("frobnicate@1s+2s"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("timer-misfire"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("timer-misfire@1s"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("timer-misfire@1s+abc"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("timer-misfire@1s+2s:p=1.5"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("timer-misfire@1s+2s:wat=1"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("timer-misfire@1s+2s:core"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("bitflip@1s+2s:flips=0"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("irq-spurious@1s+2s:period=0s"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("timer-misfire@1s+0s"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("timer-misfire@1parsec+2s"),
               std::invalid_argument);
}

TEST(FaultPlan, RejectsNumericEdgeCases) {
  // Trailing junk after an otherwise-valid number.
  EXPECT_THROW(FaultPlan::parse("timer-misfire@1s+2s:p=0.5x"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("bitflip@1s+2s:flips=3junk"),
               std::invalid_argument);
  // Non-finite values.
  EXPECT_THROW(FaultPlan::parse("timer-misfire@1s+2s:p=nan"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("timer-misfire@inf+2s"),
               std::invalid_argument);
  // Integer overflow must be an error, not a silent wrap.
  EXPECT_THROW(FaultPlan::parse("bitflip@1s+2s:core=99999999999999999999"),
               std::invalid_argument);
  // Duration overflow past the picosecond tick range.
  EXPECT_THROW(FaultPlan::parse("bitflip@1s+1e300s"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("bitflip@1e12s+1s"), std::invalid_argument);
  // Negative window start.
  EXPECT_THROW(FaultPlan::parse("bitflip@-1s+2s"), std::invalid_argument);
}

TEST(FaultPlan, RejectsMalformedSeeds) {
  EXPECT_THROW(FaultPlan::parse("seed=abc,bitflip@1s+2s"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("seed=,bitflip@1s+2s"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("seed=-3,bitflip@1s+2s"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse("seed=12x,bitflip@1s+2s"),
               std::invalid_argument);
}

TEST(FaultPlan, NumericDiagnosticsNameTheOffendingToken) {
  const auto expect_mentions = [](const char* spec, const char* token) {
    try {
      FaultPlan::parse(spec);
      FAIL() << "expected std::invalid_argument for: " << spec;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(token), std::string::npos)
          << spec << " -> " << e.what();
    }
  };
  expect_mentions("timer-misfire@1s+2s:p=0.5x", "0.5x");
  expect_mentions("seed=abc,bitflip@1s+2s", "seed=abc");
  expect_mentions("bitflip@1s+1e300s", "1e300s");
  expect_mentions("bitflip@1s+2s:core=99999999999999999999",
                  "99999999999999999999");
}

TEST(FaultPlan, ErrorMessagesNameTheOffendingItem) {
  try {
    FaultPlan::parse("timer-misfire@1s+2s,borked@3s+4s");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("borked"), std::string::npos);
  }
}

TEST(FaultPlan, KindNamesRoundTrip) {
  for (int k = 0; k < kFaultKindCount; ++k) {
    const auto kind = static_cast<FaultKind>(k);
    const std::string spec =
        std::string(to_string(kind)) + "@1s+2s";
    const FaultPlan plan = FaultPlan::parse(spec);
    ASSERT_EQ(plan.faults.size(), 1u) << spec;
    EXPECT_EQ(plan.faults[0].kind, kind);
  }
}

}  // namespace
}  // namespace satin::fault
