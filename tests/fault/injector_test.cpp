// FaultInjector seam behavior on the full simulated platform: each fault
// kind observably bites, plans are deterministic, and an armed injector
// whose windows never open costs nothing.
#include "fault/injector.h"

#include <gtest/gtest.h>

#include <array>
#include <stdexcept>
#include <vector>

#include "core/satin.h"
#include "scenario/scenario.h"

namespace satin::fault {
namespace {

using sim::Duration;
using sim::Time;

std::vector<Time> round_entries(const core::Satin& satin) {
  std::vector<Time> out;
  for (const core::RoundRecord& r : satin.round_records()) {
    out.push_back(r.entry);
  }
  return out;
}

TEST(FaultInjector, EmptySpecInstallsNothing) {
  scenario::Scenario s;
  const auto injector = install_from_spec(s.platform(), "");
  EXPECT_EQ(injector, nullptr);
  EXPECT_EQ(s.platform().fault_hooks(), nullptr);
}

TEST(FaultInjector, MalformedSpecThrows) {
  scenario::Scenario s;
  EXPECT_THROW(install_from_spec(s.platform(), "gremlins@1s+2s"),
               std::invalid_argument);
  EXPECT_EQ(s.platform().fault_hooks(), nullptr);
}

TEST(FaultInjector, DisarmUninstallsHooks) {
  scenario::Scenario s;
  auto injector = install_from_spec(s.platform(), "timer-misfire@1s+2s");
  ASSERT_NE(injector, nullptr);
  EXPECT_EQ(s.platform().fault_hooks(), injector.get());
  injector->disarm();
  EXPECT_EQ(s.platform().fault_hooks(), nullptr);
}

TEST(FaultInjector, TimerMisfireSuppressesWakes) {
  scenario::Scenario s;
  const auto injector =
      install_from_spec(s.platform(), "timer-misfire@0s+1000s");
  core::SatinConfig config;
  config.tp_s = 0.5;
  core::Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  s.run_for(Duration::from_sec(20));
  EXPECT_EQ(satin.rounds(), 0u) << "every programmed wake must be dropped";
  EXPECT_GT(injector->injected(FaultKind::kTimerMisfire), 0u);
  EXPECT_GT(s.platform().timer().faulted_programs(), 0u);
}

TEST(FaultInjector, TimerDriftDelaysWakes) {
  scenario::Scenario s;
  const auto injector =
      install_from_spec(s.platform(), "timer-drift@0s+1000s:drift=2s");
  core::SatinConfig config;
  config.multi_core = false;
  config.fixed_core = 4;
  config.randomize_wake = false;
  config.tp_s = 1.0;
  core::Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  s.run_for(Duration::from_sec(10));
  ASSERT_GE(satin.rounds(), 2u);
  EXPECT_GT(injector->injected(FaultKind::kTimerDrift), 0u);
  // Strictly periodic grid at tp = 1 s, every expiry pushed 2 s late:
  // the first entry lands at ~3 s instead of ~1 s.
  EXPECT_NEAR(satin.round_records().front().entry.sec(), 3.0, 0.1);
}

TEST(FaultInjector, LostIrqsNeverReachTheCore) {
  scenario::Scenario s;
  const auto injector = install_from_spec(s.platform(), "irq-lost@0s+1000s");
  core::SatinConfig config;
  config.tp_s = 0.5;
  core::Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  s.run_for(Duration::from_sec(20));
  EXPECT_EQ(satin.rounds(), 0u);
  EXPECT_GT(injector->injected(FaultKind::kIrqLost), 0u);
}

TEST(FaultInjector, SmcFailureAbortsSecureEntry) {
  scenario::Scenario s;
  const auto injector = install_from_spec(s.platform(), "smc-fail@0s+1000s");
  core::SatinConfig config;
  config.tp_s = 0.5;
  core::Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  s.run_for(Duration::from_sec(20));
  EXPECT_EQ(satin.rounds(), 0u);
  EXPECT_GT(injector->injected(FaultKind::kSmcFail), 0u);
  EXPECT_GT(s.platform().monitor().failed_entries(), 0u);
  for (int c = 0; c < s.platform().num_cores(); ++c) {
    EXPECT_FALSE(s.platform().core(c).in_secure_world());
  }
}

TEST(FaultInjector, CoreOfflineWindowTogglesPower) {
  scenario::Scenario s;
  const auto injector =
      install_from_spec(s.platform(), "core-off@1s+2s:core=2");
  s.run_until(Time::from_sec(2));
  EXPECT_FALSE(s.platform().core(2).online());
  s.run_until(Time::from_sec(4));
  EXPECT_TRUE(s.platform().core(2).online());
  EXPECT_EQ(injector->injected(FaultKind::kCoreOffline), 1u);
}

TEST(FaultInjector, SpuriousIrqsTriggerExtraRounds) {
  scenario::Scenario s;
  // tp is huge, so every completed round below was spuriously triggered.
  const auto injector = install_from_spec(
      s.platform(), "irq-spurious@1s+8s:period=1s:core=0");
  core::SatinConfig config;
  config.tp_s = 500.0;
  core::Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  s.run_for(Duration::from_sec(12));
  EXPECT_GT(injector->injected(FaultKind::kIrqSpurious), 0u);
  EXPECT_GE(satin.rounds(), injector->injected(FaultKind::kIrqSpurious));
  EXPECT_GT(satin.rounds(), 0u);
}

TEST(FaultInjector, ClosedWindowPlanIsZeroCost) {
  // An armed injector whose only window never opens must leave the run
  // bit-identical to a run with no injector at all.
  core::SatinConfig config;
  config.tp_s = 0.5;
  std::vector<Time> reference;
  {
    scenario::Scenario s;
    core::Satin satin(s.platform(), s.kernel(), s.tsp(), config);
    satin.start();
    s.run_for(Duration::from_sec(15));
    reference = round_entries(satin);
  }
  scenario::Scenario s;
  const auto injector =
      install_from_spec(s.platform(), "timer-misfire@100000s+1s");
  core::Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  s.run_for(Duration::from_sec(15));
  EXPECT_EQ(injector->injected_total(), 0u);
  ASSERT_FALSE(reference.empty());
  EXPECT_EQ(round_entries(satin), reference);
}

TEST(FaultInjector, SamePlanSameSeedSameSchedule) {
  const char* spec =
      "seed=3,timer-misfire@1s+6s:p=0.4,bitflip@0s+20s:p=0.3,"
      "irq-lost@4s+8s:p=0.5,core-off@9s+3s";
  auto run = [&](std::vector<Time>& entries,
                 std::array<std::uint64_t, kFaultKindCount>& counts) {
    scenario::Scenario s;
    const auto injector = install_from_spec(s.platform(), spec);
    core::SatinConfig config;
    config.tp_s = 0.5;
    core::Satin satin(s.platform(), s.kernel(), s.tsp(), config);
    satin.start();
    s.run_for(Duration::from_sec(20));
    entries = round_entries(satin);
    for (int k = 0; k < kFaultKindCount; ++k) {
      counts[static_cast<std::size_t>(k)] =
          injector->injected(static_cast<FaultKind>(k));
    }
  };
  std::vector<Time> entries_a, entries_b;
  std::array<std::uint64_t, kFaultKindCount> counts_a{}, counts_b{};
  run(entries_a, counts_a);
  run(entries_b, counts_b);
  EXPECT_EQ(entries_a, entries_b);
  EXPECT_EQ(counts_a, counts_b);
}

TEST(FaultInjector, BitFlipsHitTheViewNotTheKernel) {
  // Forced bit-flips corrupt every scan inside the window — but only the
  // scan's view. The moment the window closes the untouched backing
  // bytes verify clean again: not a single alarm after 10 s.
  scenario::Scenario s;
  const auto injector = install_from_spec(s.platform(), "bitflip@0s+10s");
  core::SatinConfig config;
  config.tp_s = 0.5;
  core::Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  s.run_until(Time::from_sec(10));
  EXPECT_GT(injector->injected(FaultKind::kBitFlip), 0u);
  const std::uint64_t in_window = satin.checker().alarms().size();
  EXPECT_GT(in_window, 0u) << "every in-window scan must mismatch";
  s.run_until(Time::from_sec(25));
  EXPECT_GT(satin.rounds(), 20u);
  EXPECT_EQ(satin.checker().alarms().size(), in_window)
      << "a flip leaked into the backing kernel bytes";
}

}  // namespace
}  // namespace satin::fault
