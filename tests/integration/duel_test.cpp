// Full-stack confrontations beyond the smoke test: prober variants,
// degraded defenses, strategy variations, and the race-bound edge.
#include <gtest/gtest.h>

#include "scenario/experiments.h"

namespace satin {
namespace {

using sim::Duration;
using sim::Time;

TEST(Duel, KProberIEvaderBetrayedByItsOwnVectorTrace) {
  // §III-C1/§IV-C: KProber-I rewrites the IRQ exception vector — a trace
  // the prober cannot remove while it is probing. Even the PKM baseline
  // scans the vector page within microseconds of starting (it sits near
  // the kernel start), long before the evader reacts.
  scenario::Scenario scenario;
  scenario::DuelConfig duel;
  duel.satin = core::make_pkm_baseline_config(2.0, true, true);
  duel.evader.prober.mode = attack::ProbeMode::kTimerInterrupt;
  // Tick-grained staleness: threshold above 1/HZ.
  duel.evader.prober.threshold_s = 6e-3;
  duel.rounds_target = 10;
  const auto report = scenario::run_duel(scenario, duel);
  EXPECT_GE(report.rounds, 10u);
  // The GETTID hijack itself escapes (it sits ~9.5 MB in)...
  // ...but every pass alarms anyway, on the vector trace.
  EXPECT_EQ(report.alarms, report.rounds);
}

TEST(Duel, OversizedAreasReopenTheRaceWindow) {
  // Ablation: split the kernel into 4 oversized areas (~3 MB each, far
  // above the 1,218,351 B bound). The hijacked entry now sits deep inside
  // its area and the evader wins every round — the Eq. 2 size bound is
  // what makes SATIN work, not the randomization alone.
  scenario::Scenario scenario;
  scenario::DuelConfig duel;
  duel.satin.areas_override =
      core::partition_even(scenario.kernel().map(),
                           /*max_bytes=*/4'200'000, /*target_count=*/3);
  duel.satin.tp_s = 2.0;
  duel.rounds_target = 12;
  const auto report = scenario::run_duel(scenario, duel);
  EXPECT_GE(report.rounds, 12u);
  EXPECT_GE(report.target_area_rounds, 2u);
  EXPECT_TRUE(report.evader_always_escaped())
      << report.target_area_alarms << "/" << report.target_area_rounds;
}

TEST(Duel, PredictableScheduleDefeatedWithoutAnyProber) {
  // §V-C's rationale for the random deviation: a strictly periodic
  // checker can be evaded by *prediction* alone. The attacker hides
  // shortly before each known wake time and re-arms after — no side
  // channel needed.
  scenario::Scenario scenario;
  core::SatinConfig config;
  config.multi_core = false;
  config.fixed_core = 5;
  config.randomize_wake = false;  // strictly periodic: predictable
  config.tp_s = 1.0;
  core::Satin satin(scenario.platform(), scenario.kernel(), scenario.tsp(),
                    config);
  satin.start();

  attack::Rootkit rootkit(scenario.os(),
                          scenario.platform().rng().fork("oracle"));
  rootkit.add_gettid_trace();
  rootkit.install();
  // The attacker learned the period; it hides 20 ms before every expected
  // wake and re-arms 200 ms after.
  for (int k = 1; k <= 12; ++k) {
    const Time wake = Time::from_sec(k);
    scenario.engine().schedule_at(wake - Duration::from_ms(20), [&rootkit] {
      if (rootkit.installed() && !rootkit.recovering()) {
        rootkit.begin_recovery(hw::CoreType::kBigA57, [] {});
      }
    });
    scenario.engine().schedule_at(wake + Duration::from_ms(200), [&rootkit] {
      if (!rootkit.installed() && !rootkit.recovering()) rootkit.install();
    });
  }
  scenario.run_for(Duration::from_sec(13));
  EXPECT_GE(satin.rounds(), 10u);
  EXPECT_EQ(satin.alarm_count(), 0u)
      << "a predictable schedule protects nothing";

  // The same oracle schedule against the randomized variant misfires: the
  // deviation makes wake times unpredictable (checked by the smoke test's
  // full SATIN duel; here we only assert the periodic case).
}

TEST(Duel, SnapshotStrategySatinAlsoCatchesEvader) {
  scenario::Scenario scenario;
  scenario::DuelConfig duel;
  duel.satin.strategy = secure::ScanStrategy::kSnapshotThenHash;
  duel.satin.tgoal_s = 38.0;
  duel.rounds_target = 40;
  const auto report = scenario::run_duel(scenario, duel);
  EXPECT_TRUE(report.satin_always_caught());
  EXPECT_EQ(report.false_negatives, 0u);
}

TEST(Duel, Fnv1aHashSatinAlsoCatchesEvader) {
  scenario::Scenario scenario;
  scenario::DuelConfig duel;
  duel.satin.hash = secure::HashKind::kFnv1a;
  duel.satin.tgoal_s = 38.0;
  duel.rounds_target = 40;
  const auto report = scenario::run_duel(scenario, duel);
  EXPECT_TRUE(report.satin_always_caught());
}

TEST(Duel, GroundTruthBookkeepingConsistent) {
  scenario::Scenario scenario;
  scenario::DuelConfig duel;
  duel.satin.tgoal_s = 38.0;
  duel.rounds_target = 30;
  const auto report = scenario::run_duel(scenario, duel);
  EXPECT_EQ(report.secure_stays, report.rounds);
  // Roughly one detection per stay (staleness can oscillate around the
  // threshold at a stay's edge, re-latching once).
  EXPECT_GE(report.prober_detections, report.rounds);
  EXPECT_LE(report.prober_detections, report.rounds + 3);
  // Overlapping rounds (gap ~ 0) can share one recovery, so evasions may
  // fall slightly short of the round count.
  EXPECT_LE(report.evasions_started, report.rounds);
  EXPECT_GE(report.evasions_started + 5, report.rounds);
  // Every hide was followed by a re-arm (except possibly the last).
  EXPECT_GE(report.rearms + 1, report.evasions_started);
}

TEST(Duel, EvaderKeepsRichOsAliveDuringDuel) {
  // The whole point of asynchronous introspection on multi-core: the rich
  // OS keeps running on other cores while rounds execute.
  scenario::Scenario scenario;
  auto* worker = scenario.os().add_thread(
      std::make_unique<os::FunctionThread>("worker", [](os::OsContext&) {
        return os::ComputeAction{Duration::from_ms(1), nullptr};
      }));
  scenario::DuelConfig duel;
  duel.satin.tgoal_s = 19.0;  // tp = 1 s: frequent rounds
  duel.rounds_target = 20;
  const auto report = scenario::run_duel(scenario, duel);
  EXPECT_GE(report.rounds, 20u);
  // The CFS worker got nearly all of one core despite ~20 stays.
  EXPECT_GT(worker->cpu_time().sec() / report.sim_seconds, 0.90);
}

TEST(Duel, FixedCoreSatinStillCatchesDefaultLayout) {
  // With the default (bound-respecting) areas even the fixed-core,
  // single-core-probed configuration catches the evader: the §IV-B2
  // advantage of random cores shows up at the race margin, not here.
  scenario::Scenario scenario;
  scenario::DuelConfig duel;
  duel.satin.multi_core = false;
  duel.satin.fixed_core = 4;  // big core
  duel.satin.tp_s = 1.0;
  duel.evader.prober.probed_cores = {4};
  duel.evader.prober.observer_core = 0;
  duel.evader.prober.threshold_s = 0.45e-3;  // single-core probing: ~1/4
  duel.rounds_target = 40;
  const auto report = scenario::run_duel(scenario, duel);
  EXPECT_GE(report.target_area_rounds, 1u);
  EXPECT_TRUE(report.satin_always_caught());
  EXPECT_EQ(report.false_negatives, 0u);
}

}  // namespace
}  // namespace satin
