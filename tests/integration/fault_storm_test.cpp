// End-to-end: the SATIN-vs-evader duel under the full fault storm from
// examples/fault_storm.cpp. Self-healing must preserve the detection
// guarantee — every pass over the tampered area flagged, no benign area
// ever confirmed tampered — and the whole storm must be deterministic.
#include <gtest/gtest.h>

#include "fault/injector.h"
#include "scenario/experiments.h"
#include "scenario/scenario.h"

namespace satin::scenario {
namespace {

constexpr char kStorm[] =
    "seed=9,"
    "timer-misfire@5s+30s:p=0.35,"
    "irq-lost@20s+40s:p=0.3,"
    "smc-fail@45s+30s:p=0.25,"
    "timer-drift@70s+40s:p=0.5:drift=800ms,"
    "irq-spurious@95s+20s:p=0.3:period=2s,"
    "bitflip@10s+130s:p=0.12,"
    "core-off@110s+25s:core=3";

DuelConfig storm_duel() {
  DuelConfig duel;
  duel.satin.tgoal_s = 57.0;  // tp = 3 s
  duel.rounds_target = 57;    // three full kernel cycles
  duel.satin.resilience.watchdog = true;
  duel.satin.resilience.max_scan_retries = 2;
  duel.satin.resilience.adapt_offline = true;
  return duel;
}

struct StormRun {
  DuelReport report;
  std::uint64_t injected_total = 0;
  std::uint64_t injected_bitflips = 0;
};

StormRun run_storm() {
  Scenario system;
  const auto injector = fault::install_from_spec(system.platform(), kStorm);
  StormRun out;
  out.report = run_duel(system, storm_duel());
  out.injected_total = injector->injected_total();
  out.injected_bitflips = injector->injected(fault::FaultKind::kBitFlip);
  return out;
}

TEST(FaultStorm, DetectionGuaranteeSurvivesTheStorm) {
  const StormRun run = run_storm();
  const DuelReport& r = run.report;

  // The storm actually happened and self-healing actually worked.
  EXPECT_GT(run.injected_total, 0u);
  EXPECT_GT(run.injected_bitflips, 0u);
  EXPECT_GT(r.watchdog_fires, 0u) << "misfires must trip the watchdog";
  EXPECT_GT(r.scan_retries, 0u) << "bit-flips must trigger rescans";
  EXPECT_GT(r.transient_alarms, 0u)
      << "injected flips must classify transient";

  // Acceptance criteria: the duel completes despite the faults, the
  // rootkit is flagged on every pass over its area, and no glitch is
  // ever mistaken for tampering.
  EXPECT_GE(r.rounds, 57u);
  EXPECT_GE(r.full_cycles, 3u);
  ASSERT_GT(r.target_area_rounds, 0u);
  EXPECT_TRUE(r.target_always_flagged())
      << r.target_area_alarms << " of " << r.target_area_rounds
      << " target-area rounds flagged";
  EXPECT_EQ(r.benign_confirmed_alarms, 0u)
      << "a transient glitch escalated to confirmed tamper";
  EXPECT_GT(r.confirmed_alarms, 0u)
      << "the persistent rootkit must confirm at least once";
}

TEST(FaultStorm, StormIsDeterministic) {
  const StormRun a = run_storm();
  const StormRun b = run_storm();
  EXPECT_EQ(a.injected_total, b.injected_total);
  EXPECT_EQ(a.injected_bitflips, b.injected_bitflips);
  EXPECT_EQ(a.report.rounds, b.report.rounds);
  EXPECT_EQ(a.report.alarms, b.report.alarms);
  EXPECT_EQ(a.report.confirmed_alarms, b.report.confirmed_alarms);
  EXPECT_EQ(a.report.transient_alarms, b.report.transient_alarms);
  EXPECT_EQ(a.report.watchdog_fires, b.report.watchdog_fires);
  EXPECT_EQ(a.report.scan_retries, b.report.scan_retries);
  EXPECT_EQ(a.report.target_area_rounds, b.report.target_area_rounds);
  EXPECT_EQ(a.report.target_area_alarms, b.report.target_area_alarms);
  EXPECT_EQ(a.report.secure_stays, b.report.secure_stays);
  EXPECT_EQ(a.report.sim_seconds, b.report.sim_seconds);
}

}  // namespace
}  // namespace satin::scenario
