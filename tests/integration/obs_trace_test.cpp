// End-to-end observability: run the quickstart scenario (SATIN catches a
// GETTID rootkit) with a recorder + registry installed and check that the
// trace tells a coherent story — spans pair up per core, the counters
// agree with the simulation, and two same-seed runs trace identically.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <utility>

#include "attack/rootkit.h"
#include "core/satin.h"
#include "obs/metrics.h"
#include "obs/session.h"
#include "obs/trace.h"
#include "scenario/scenario.h"

namespace satin {
namespace {

struct RunResult {
  std::vector<obs::TraceEvent> events;
  std::string chrome_json;
  std::string metrics_json;
  std::uint64_t scans = 0;
  std::uint64_t rounds = 0;
  std::uint64_t world_switches = 0;
  std::uint64_t detections = 0;
};

RunResult run_quickstart_traced() {
  obs::TraceRecorder recorder(1u << 16);
  obs::MetricsRegistry registry;
  obs::install_tracer(&recorder);
  obs::install_metrics(&registry);

  {
    scenario::Scenario system;
    core::Satin satin(system.platform(), system.kernel(), system.tsp(),
                      core::SatinConfig{});
    satin.start();
    attack::Rootkit rootkit(system.os(),
                            system.platform().rng().fork("quickstart"));
    rootkit.add_gettid_trace();
    rootkit.install();
    while (satin.checker().check_count(14) == 0) {
      system.run_for(sim::Duration::from_sec(5));
    }
    satin.stop();
  }

  obs::install_tracer(nullptr);
  obs::install_metrics(nullptr);

  RunResult out;
  out.events = recorder.snapshot();
  out.chrome_json = recorder.to_chrome_json();
  out.metrics_json = registry.to_json();
  auto counter = [&](const char* name) -> std::uint64_t {
    const obs::Counter* c = registry.find_counter(name);
    return c == nullptr ? 0 : c->value();
  };
  out.scans = counter("introspect.scans");
  out.rounds = counter("satin.rounds");
  out.world_switches = counter("hw.world_switches");
  out.detections = counter("satin.detections");
  return out;
}

// (begins, ends) for one span name, grouped by core.
std::map<int, std::pair<int, int>> span_balance(
    const std::vector<obs::TraceEvent>& events, const char* name) {
  std::map<int, std::pair<int, int>> by_core;
  for (const auto& ev : events) {
    if (std::strcmp(ev.name, name) != 0) continue;
    if (ev.phase == obs::TracePhase::kBegin) ++by_core[ev.core].first;
    if (ev.phase == obs::TracePhase::kEnd) ++by_core[ev.core].second;
  }
  return by_core;
}

TEST(ObsIntegrationTest, QuickstartTraceTellsACoherentStory) {
#if !SATIN_OBS_ENABLED
  GTEST_SKIP() << "instrumentation compiled out (SATIN_ENABLE_OBS=OFF)";
#endif
  const RunResult run = run_quickstart_traced();

  // The simulation did real work and the counters saw it.
  EXPECT_GT(run.scans, 0u);
  EXPECT_GT(run.rounds, 0u);
  EXPECT_GT(run.world_switches, 0u);
  EXPECT_GT(run.detections, 0u) << "rootkit in area 14 must raise an alarm";
  // Every SATIN round launches one scan; at most the in-flight tail (one
  // session per core) can be un-completed when the run stops.
  EXPECT_GE(run.rounds, run.scans);
  EXPECT_LE(run.rounds - run.scans, 6u);

  // World-switch spans pair per core (the run ends outside the secure
  // world, so every enter has its exit).
  const auto switches = span_balance(run.events, "secure_world");
  ASSERT_FALSE(switches.empty());
  for (const auto& [core, be] : switches) {
    EXPECT_EQ(be.first, be.second) << "unbalanced secure_world on core "
                                   << core;
    EXPECT_GT(be.first, 0);
  }

  // Scan spans pair per core too; at most the final in-flight scan (cut
  // off by satin.stop()) may be open.
  const auto scans = span_balance(run.events, "scan");
  ASSERT_FALSE(scans.empty());
  int total_begins = 0;
  for (const auto& [core, be] : scans) {
    EXPECT_GE(be.first, be.second);
    EXPECT_LE(be.first - be.second, 1)
        << "more than one dangling scan on core " << core;
    total_begins += be.first;
  }
  EXPECT_GT(total_begins, 0);

  // The exported JSON carries the per-core/world track metadata.
  EXPECT_NE(run.chrome_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(run.chrome_json.find("core0/secure"), std::string::npos);
  EXPECT_NE(run.metrics_json.find("introspect.scans"), std::string::npos);
}

TEST(ObsIntegrationTest, SameSeedRunsTraceIdentically) {
  const RunResult a = run_quickstart_traced();
  const RunResult b = run_quickstart_traced();
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(a.chrome_json, b.chrome_json);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

TEST(ObsIntegrationTest, EngineSelfMetricsLandInSnapshot) {
  sim::Engine engine;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_after(sim::Duration::from_us(i + 1), [] {});
  }
  engine.run_all();
  obs::MetricsRegistry registry;
  obs::snapshot_engine_metrics(engine, registry);
  ASSERT_NE(registry.find_gauge("engine.events_fired"), nullptr);
  EXPECT_DOUBLE_EQ(registry.find_gauge("engine.events_fired")->value(), 10.0);
  ASSERT_NE(registry.find_gauge("engine.queue_high_water"), nullptr);
  EXPECT_DOUBLE_EQ(registry.find_gauge("engine.queue_high_water")->value(),
                   10.0);
  ASSERT_NE(registry.find_gauge("engine.wall_seconds"), nullptr);
  EXPECT_GE(registry.find_gauge("engine.wall_seconds")->value(), 0.0);
}

}  // namespace
}  // namespace satin
