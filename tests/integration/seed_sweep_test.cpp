// The headline results must not depend on one lucky seed: the SATIN duel
// and the baseline evasion are re-run across platform seeds.
#include <gtest/gtest.h>

#include "scenario/experiments.h"

namespace satin {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, SatinAlwaysCatchesAndProberNeverLies) {
  scenario::ScenarioConfig config;
  config.platform.seed = GetParam();
  scenario::Scenario scenario(config);
  scenario::DuelConfig duel;
  duel.satin.tgoal_s = 38.0;
  duel.rounds_target = 40;
  const auto report = scenario::run_duel(scenario, duel);
  EXPECT_GE(report.target_area_rounds, 1u);
  EXPECT_TRUE(report.satin_always_caught())
      << "seed " << GetParam() << ": " << report.target_area_alarms << "/"
      << report.target_area_rounds;
  EXPECT_EQ(report.false_positives, 0u);
  EXPECT_EQ(report.false_negatives, 0u);
}

TEST_P(SeedSweep, EvaderAlwaysBeatsBaseline) {
  scenario::ScenarioConfig config;
  config.platform.seed = GetParam() ^ 0xABCDEF;
  scenario::Scenario scenario(config);
  scenario::DuelConfig duel;
  duel.satin = core::make_pkm_baseline_config(2.0, true, true);
  duel.rounds_target = 8;
  const auto report = scenario::run_duel(scenario, duel);
  EXPECT_TRUE(report.evader_always_escaped())
      << "seed " << GetParam() << ": " << report.target_area_alarms << "/"
      << report.target_area_rounds;
  EXPECT_EQ(report.false_negatives, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1ull, 42ull, 0xDEADBEEFull,
                                           20190624ull, 777ull));

}  // namespace
}  // namespace satin
