// Table II — Probing Threshold on Multi-Core.
//
// 50 probing windows per period in {8, 16, 30, 120, 300} s; the threshold
// of a window is the largest time difference the Time Comparer observed.
// Long windows use the calibrated closed-form sampler (simulating 23,700 s
// of 5 kHz prober rounds event-by-event buys no information — see
// attack/threshold_sampler.h); a short-period cross-validation against
// the fully event-driven prober is printed at the end.
//
// One trial per period (and per cross-validation window), fanned over
// --jobs=J workers. Per-period samplers draw from forks of the trial
// seed, so every row depends only on (root seed, period) — bit-identical
// output for any J.
#include "attack/prober.h"
#include "attack/threshold_sampler.h"
#include "bench/common.h"
#include "scenario/scenario.h"
#include "sim/parallel.h"
#include "sim/stats.h"

namespace satin {
namespace {

struct PaperRow {
  double period;
  double avg, max, min;
};

const PaperRow kPaper[] = {
    {8, 2.61e-4, 7.76e-4, 1.07e-4},    {16, 3.54e-4, 1.38e-3, 1.31e-4},
    {30, 4.21e-4, 8.99e-4, 2.59e-4},   {120, 5.26e-4, 9.49e-4, 3.18e-4},
    {300, 6.61e-4, 1.77e-3, 4.18e-4},
};
constexpr std::size_t kPeriods = sizeof(kPaper) / sizeof(kPaper[0]);

// Everything one period contributes: the Table II row (all-core) plus the
// single-core comparison row.
struct PeriodStats {
  double avg = 0.0, max = 0.0, min = 0.0;
  double one_mean = 0.0, all_mean = 0.0;
};

}  // namespace
}  // namespace satin

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  hw::TimingParams timing;
  const int jobs = obs.jobs(/*fallback=*/1);

  sim::TrialRunnerOptions options;
  options.jobs = jobs;
  options.flight_ring = obs.flight_ring();
  options.root_seed = 20190624;
  sim::TrialRunner runner(options);
  const std::vector<PeriodStats> stats = runner.run_collect(
      kPeriods, [&timing](const sim::TrialContext& ctx) {
        const double period = kPaper[ctx.index].period;
        sim::Rng base(ctx.seed);
        PeriodStats out;
        {
          attack::ThresholdSampler sampler(timing.cross_core,
                                           base.fork("table"), 6);
          sim::Accumulator acc;
          for (int i = 0; i < 50; ++i) {
            acc.add(sampler.sample_window_max_seconds(period));
          }
          out.avg = acc.mean();
          out.max = acc.max();
          out.min = acc.min();
        }
        attack::ThresholdSampler all(timing.cross_core, base.fork("all"), 6);
        attack::ThresholdSampler one(timing.cross_core, base.fork("one"), 1);
        sim::Accumulator all_acc, one_acc;
        for (int i = 0; i < 50; ++i) {
          all_acc.add(all.sample_window_max_seconds(period));
          one_acc.add(one.sample_window_max_seconds(period));
        }
        out.all_mean = all_acc.mean();
        out.one_mean = one_acc.mean();
        return out;
      });

  bench::heading("Table II: Probing Threshold on Multi-Core (s), 50 windows");
  bench::columns("Period", {"Average", "Max", "Min", "paper-avg", "paper-max",
                            "paper-min"});
  for (std::size_t i = 0; i < kPeriods; ++i) {
    bench::sci_row(
        std::to_string(static_cast<int>(kPaper[i].period)) + " s",
        {stats[i].avg, stats[i].max, stats[i].min, kPaper[i].avg,
         kPaper[i].max, kPaper[i].min});
  }

  bench::subheading("Single-core probing (§IV-B2: ~1/4 of all-core)");
  for (std::size_t i = 0; i < kPeriods; ++i) {
    bench::sci_row(std::to_string(static_cast<int>(kPaper[i].period)) + " s",
                   {stats[i].one_mean, stats[i].all_mean,
                    stats[i].one_mean / stats[i].all_mean},
                   "(single, all, ratio)");
  }

  bench::subheading("Cross-validation: event-driven prober, 5 x 8 s windows");
  const std::vector<double> window_max = runner.run_collect(
      std::size_t{5}, [](const sim::TrialContext& ctx) {
        scenario::ScenarioConfig config;
        config.platform.seed = 0xBE9C4 + static_cast<std::uint64_t>(ctx.index);
        scenario::Scenario s(config);
        attack::KProber prober(s.os(), attack::KProberConfig{});
        prober.deploy();
        s.run_for(sim::Duration::from_sec(8));
        if (auto* registry = obs::metrics()) {
          obs::snapshot_engine_metrics(s.engine(), *registry,
                                       /*include_wall=*/false);
        }
        return prober.max_benign_staleness_s();
      });
  sim::Accumulator event_acc;
  for (double m : window_max) event_acc.add(m);
  // The event-driven prober's staleness includes the wake-phase quantum
  // (a report ages up to one Tsleep = 2e-4 s between rounds); subtract it
  // to compare against the Comparer-difference statistic of Table II.
  bench::sci_row("event-driven avg(max)", {event_acc.mean()});
  bench::sci_row("  minus Tsleep quantum",
                 {event_acc.mean() - timing.kprober_sleep_s},
                 "(compare Table II 8 s avg)");
  bench::sci_row("analytic avg (8 s)", {[&] {
                   attack::ThresholdSampler sampler(timing.cross_core,
                                                    sim::Rng(20190624), 6);
                   sim::Accumulator acc;
                   for (int i = 0; i < 200; ++i) {
                     acc.add(sampler.sample_window_max_seconds(8.0));
                   }
                   return acc.mean();
                 }()});
  bench::json_row("bench_table2_probing_threshold", runner.trials_run(), jobs,
                  runner.wall_seconds());
  return 0;
}
