// Table II — Probing Threshold on Multi-Core.
//
// 50 probing windows per period in {8, 16, 30, 120, 300} s; the threshold
// of a window is the largest time difference the Time Comparer observed.
// Long windows use the calibrated closed-form sampler (simulating 23,700 s
// of 5 kHz prober rounds event-by-event buys no information — see
// attack/threshold_sampler.h); a short-period cross-validation against
// the fully event-driven prober is printed at the end.
#include "attack/prober.h"
#include "attack/threshold_sampler.h"
#include "bench/common.h"
#include "scenario/scenario.h"
#include "sim/stats.h"

namespace satin {
namespace {

struct PaperRow {
  double period;
  double avg, max, min;
};

const PaperRow kPaper[] = {
    {8, 2.61e-4, 7.76e-4, 1.07e-4},    {16, 3.54e-4, 1.38e-3, 1.31e-4},
    {30, 4.21e-4, 8.99e-4, 2.59e-4},   {120, 5.26e-4, 9.49e-4, 3.18e-4},
    {300, 6.61e-4, 1.77e-3, 4.18e-4},
};

}  // namespace
}  // namespace satin

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  hw::TimingParams timing;

  bench::heading("Table II: Probing Threshold on Multi-Core (s), 50 windows");
  bench::columns("Period", {"Average", "Max", "Min", "paper-avg", "paper-max",
                            "paper-min"});
  attack::ThresholdSampler sampler(timing.cross_core, sim::Rng(20190624), 6);
  for (const auto& row : kPaper) {
    sim::Accumulator acc;
    for (int i = 0; i < 50; ++i) {
      acc.add(sampler.sample_window_max_seconds(row.period));
    }
    bench::sci_row(std::to_string(static_cast<int>(row.period)) + " s",
                   {acc.mean(), acc.max(), acc.min(), row.avg, row.max,
                    row.min});
  }

  bench::subheading("Single-core probing (§IV-B2: ~1/4 of all-core)");
  attack::ThresholdSampler single(timing.cross_core, sim::Rng(20190624), 1);
  for (const auto& row : kPaper) {
    sim::Accumulator all_acc, one_acc;
    for (int i = 0; i < 50; ++i) {
      all_acc.add(sampler.sample_window_max_seconds(row.period));
      one_acc.add(single.sample_window_max_seconds(row.period));
    }
    bench::sci_row(std::to_string(static_cast<int>(row.period)) + " s",
                   {one_acc.mean(), all_acc.mean(),
                    one_acc.mean() / all_acc.mean()},
                   "(single, all, ratio)");
  }

  bench::subheading("Cross-validation: event-driven prober, 5 x 8 s windows");
  sim::Accumulator event_acc;
  for (int w = 0; w < 5; ++w) {
    scenario::ScenarioConfig config;
    config.platform.seed = 0xBE9C4 + static_cast<std::uint64_t>(w);
    scenario::Scenario s(config);
    attack::KProber prober(s.os(), attack::KProberConfig{});
    prober.deploy();
    s.run_for(sim::Duration::from_sec(8));
    event_acc.add(prober.max_benign_staleness_s());
  }
  // The event-driven prober's staleness includes the wake-phase quantum
  // (a report ages up to one Tsleep = 2e-4 s between rounds); subtract it
  // to compare against the Comparer-difference statistic of Table II.
  bench::sci_row("event-driven avg(max)", {event_acc.mean()});
  bench::sci_row("  minus Tsleep quantum",
                 {event_acc.mean() - timing.kprober_sleep_s},
                 "(compare Table II 8 s avg)");
  bench::sci_row("analytic avg (8 s)", {[&] {
                   sim::Accumulator acc;
                   for (int i = 0; i < 200; ++i) {
                     acc.add(sampler.sample_window_max_seconds(8.0));
                   }
                   return acc.mean();
                 }()});
  return 0;
}
