// §VI-B1 — Defeating TZ-Evader: the paper's headline experiment.
//
// SATIN (19 areas, tp = 8 s) against TZ-Evader (KProber threshold
// 1.8e-3 s, GETTID hijack in area 14). The paper runs 190 rounds: the
// whole kernel is examined 10 times, area 14 is checked 10 times and the
// hijack is detected all 10 times; KProber reports all 190 rounds with no
// false positives or negatives; the average gap between area-14 checks is
// 141 s and the guaranteed full-scan period ~152 s.
#include "bench/common.h"
#include "scenario/experiments.h"

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  scenario::Scenario scenario;
  scenario::DuelConfig duel;  // defaults ARE the paper configuration
  duel.rounds_target = 190;

  std::printf("running 190 introspection rounds (~1520 simulated s)...\n");
  const auto report = scenario::run_duel(scenario, duel);

  bench::heading("SATIN vs TZ-Evader (§VI-B1)");
  bench::text_row("introspection rounds", std::to_string(report.rounds),
                  "(paper: 190)");
  bench::text_row("full kernel scans", std::to_string(report.full_cycles),
                  "(paper: 10)");
  bench::text_row("area-14 checks",
                  std::to_string(report.target_area_rounds), "(paper: 10)");
  bench::text_row("area-14 detections",
                  std::to_string(report.target_area_alarms),
                  "(paper: 10/10)");
  bench::text_row("prober-reported rounds",
                  std::to_string(report.prober_detections),
                  "(paper: all 190)");
  bench::text_row("false positives", std::to_string(report.false_positives),
                  "(paper: 0)");
  bench::text_row("false negatives", std::to_string(report.false_negatives),
                  "(paper: 0)");
  bench::sci_row("avg gap between area-14 checks (s)",
                 {report.avg_target_gap_s}, "(paper: 141 s)");
  bench::text_row("evasion attempts", std::to_string(report.evasions_started));
  bench::text_row("successful evasions of area-14 scans",
                  std::to_string(report.target_area_rounds -
                                 report.target_area_alarms),
                  "(paper: 0 — 'all the recovery efforts fail')");
  bench::sci_row("simulated duration (s)", {report.sim_seconds});

  core::Satin probe(scenario.platform(), scenario.kernel(), scenario.tsp(),
                    core::SatinConfig{});
  bench::sci_row("guaranteed full-scan period (s)",
                 {probe.guaranteed_scan_period(hw::CoreType::kBigA57).sec()},
                 "(paper: ~152 s)");
  return 0;
}
