// §VI-B1 — Defeating TZ-Evader: the paper's headline experiment.
//
// SATIN (19 areas, tp = 8 s) against TZ-Evader (KProber threshold
// 1.8e-3 s, GETTID hijack in area 14). The paper runs 190 rounds: the
// whole kernel is examined 10 times, area 14 is checked 10 times and the
// hijack is detected all 10 times; KProber reports all 190 rounds with no
// false positives or negatives; the average gap between area-14 checks is
// 141 s and the guaranteed full-scan period ~152 s.
//
// Three seed replicas run through scenario::run_duel_sweep over --jobs=J
// workers. Replica 0 keeps the paper-baseline platform seed (its rows
// below match the single-run bench of record); the extra replicas feed
// the seed-stability summary.
#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "bench/common.h"
#include "scenario/experiments.h"
#include "secure/digest_cache.h"

namespace {

// Strips --clean-rounds=<N> from argv; 0 = flag absent (run the duel).
std::uint64_t take_clean_rounds(int& argc, char** argv) {
  constexpr const char* kPrefix = "--clean-rounds=";
  std::uint64_t rounds = 0;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, std::strlen(kPrefix)) == 0) {
      rounds = std::strtoull(argv[i] + std::strlen(kPrefix), nullptr, 10);
      continue;
    }
    argv[out++] = argv[i];
  }
  argv[out] = nullptr;
  argc = out;
  return rounds;
}

// --clean-rounds=N: a hash-dominated workload for the incremental digest
// cache. SATIN runs alone (no attacker, no workload churn) with a brisk
// tp, so almost every round re-hashes a byte-identical area: exactly the
// mostly-clean steady state §VI-B1's long runs spend their time in. With
// the cache on, warm rounds skip the full re-hash in host time; simulated
// time, digests and every stdout row below stay bit-identical to
// --digest-cache=off (the CI gate diffs the two).
int run_clean_rounds(std::uint64_t target) {
  using namespace satin;
  scenario::Scenario system;
  core::SatinConfig config;
  config.tp_s = 0.05;  // one area every 50 ms: hashing dominates events
  core::Satin satin(system.platform(), system.kernel(), system.tsp(), config);
  satin.start();
  // Slice the run so we stop near the target instead of overshooting by
  // a whole horizon; the loop is deterministic (sim-time driven).
  while (satin.rounds() < target) {
    system.run_for(sim::Duration::from_ms(500));
  }
  satin.stop();
  system.run_for(sim::Duration::from_ms(500));  // drain in-flight rounds

  const auto& stats =
      satin.checker().introspector().digest_cache().stats();
  bench::heading("SATIN clean-round introspection (digest-cache workload)");
  bench::text_row("introspection rounds", std::to_string(satin.rounds()));
  bench::text_row("full kernel cycles", std::to_string(satin.full_cycles()));
  bench::text_row("areas", std::to_string(satin.area_count()));
  bench::text_row("alarms", std::to_string(satin.alarm_count()),
                  "(every digest matched the authorized value)");
  bench::sci_row("simulated duration (s)", {system.now().sec()});
  // Shadow mode keeps this bookkeeping identical with the cache off, so
  // these rows are safe to print under the on-vs-off stdout diff.
  bench::subheading("digest cache");
  bench::text_row("chunk hits", std::to_string(stats.hits));
  bench::text_row("chunk misses", std::to_string(stats.misses));
  bench::text_row("chunk invalidations", std::to_string(stats.invalidations));
  bench::text_row("bypasses", std::to_string(stats.bypasses));
  bench::text_row("bytes hashed", std::to_string(stats.bytes_hashed));
  bench::text_row("bytes skipped", std::to_string(stats.bytes_skipped));
  const std::string name =
      std::string("bench_satin_detection_clean_") +
      (secure::digest_cache_default() ? "on" : "off");
  bench::json_row(name, satin.rounds(), 1, system.engine().wall_seconds());
  return satin.alarm_count() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  const std::uint64_t clean_rounds = take_clean_rounds(argc, argv);
  if (clean_rounds > 0) return run_clean_rounds(clean_rounds);
  constexpr std::size_t kReplicas = 3;

  scenario::DuelSweepConfig sweep_config;
  sweep_config.duel.rounds_target = 190;  // defaults ARE the paper config
  sweep_config.trials = kReplicas;
  sweep_config.jobs = obs.jobs(/*fallback=*/1);
  // --batch=K: lockstep shards of K trials on the batched draw pipeline.
  // A pure speed knob — every stdout row below is byte-identical to
  // --batch=1 (the scalar run of record), which CI diffs.
  sweep_config.batch = obs.batch(/*fallback=*/1);
  sweep_config.flight_ring = obs.flight_ring();
  // --branches=N: COW fork branch groups (sim/fork.h). With no
  // --fork-prefix this replays each replica from scratch in a child —
  // byte-identical to the in-process run (CI-gated). --fork-prefix=S
  // shares S simulated seconds across a group and diverges each branch
  // by the default RNG perturbation — CI's negative control.
  sweep_config.branches = obs.branches(/*fallback=*/0);
  sweep_config.fork_prefix_s = obs.fork_prefix_s();
  if (sweep_config.branches > 0 && sweep_config.batch > 1) {
    std::fprintf(stderr, "--branches and --batch are mutually exclusive\n");
    return 2;
  }

  std::printf(
      "running %zu replicas of 190 introspection rounds (~1520 simulated s "
      "each)...\n",
      kReplicas);
  const scenario::DuelSweep sweep = scenario::run_duel_sweep(
      sweep_config,
      [](const sim::TrialContext& ctx, scenario::ScenarioConfig& config,
         scenario::DuelConfig&) {
        // Replica 0 is the run of record: the default platform seed every
        // previous single-run bench and EXPERIMENTS.md quoted.
        if (ctx.index == 0) config.platform.seed = hw::PlatformConfig{}.seed;
      });
  const scenario::DuelReport& report = sweep.reports[0];

  bench::heading("SATIN vs TZ-Evader (§VI-B1)");
  bench::text_row("introspection rounds", std::to_string(report.rounds),
                  "(paper: 190)");
  bench::text_row("full kernel scans", std::to_string(report.full_cycles),
                  "(paper: 10)");
  bench::text_row("area-14 checks",
                  std::to_string(report.target_area_rounds), "(paper: 10)");
  bench::text_row("area-14 detections",
                  std::to_string(report.target_area_alarms),
                  "(paper: 10/10)");
  bench::text_row("prober-reported rounds",
                  std::to_string(report.prober_detections),
                  "(paper: all 190)");
  bench::text_row("false positives", std::to_string(report.false_positives),
                  "(paper: 0)");
  bench::text_row("false negatives", std::to_string(report.false_negatives),
                  "(paper: 0)");
  bench::sci_row("avg gap between area-14 checks (s)",
                 {report.avg_target_gap_s}, "(paper: 141 s)");
  bench::text_row("evasion attempts", std::to_string(report.evasions_started));
  bench::text_row("successful evasions of area-14 scans",
                  std::to_string(report.target_area_rounds -
                                 report.target_area_alarms),
                  "(paper: 0 — 'all the recovery efforts fail')");
  bench::sci_row("simulated duration (s)", {report.sim_seconds});

  bench::subheading("seed stability across replicas");
  std::size_t always_caught = 0;
  std::uint64_t fp = 0, fn = 0;
  double gap_min = sweep.reports[0].avg_target_gap_s;
  double gap_max = gap_min;
  for (const scenario::DuelReport& r : sweep.reports) {
    if (r.satin_always_caught()) ++always_caught;
    fp += r.false_positives;
    fn += r.false_negatives;
    gap_min = std::min(gap_min, r.avg_target_gap_s);
    gap_max = std::max(gap_max, r.avg_target_gap_s);
  }
  bench::text_row("replicas always caught",
                  std::to_string(always_caught) + "/" +
                      std::to_string(kReplicas),
                  "(every area-14 pass alarmed, every seed)");
  bench::text_row("false pos/neg across replicas",
                  std::to_string(fp) + "/" + std::to_string(fn),
                  "(paper: 0/0)");
  bench::sci_row("area-14 gap range (s)", {gap_min, gap_max},
                 "(paper: 141 s)");

  scenario::Scenario scenario;
  core::Satin probe(scenario.platform(), scenario.kernel(), scenario.tsp(),
                    core::SatinConfig{});
  bench::sci_row("guaranteed full-scan period (s)",
                 {probe.guaranteed_scan_period(hw::CoreType::kBigA57).sec()},
                 "(paper: ~152 s)");
  bench::json_row("bench_satin_detection", kReplicas, sweep.jobs,
                  sweep.wall_seconds);
  return 0;
}
