// §III-B1 — the user-level prober.
//
// A stealthy CFS prober (no kernel modification, no root) detects a
// secure-world kernel-integrity check. On a lightly loaded system the
// paper measures Tns_delay < 5.97e-3 s while one whole-kernel check runs
// for 8.04e-2 s — the prober comfortably wins. Under competing CFS load,
// however, its reports stall for scheduler quanta and the side channel
// turns noisy — the §III-B2 instability that motivates KProber-II.
#include "attack/prober.h"
#include "bench/common.h"
#include "scenario/scenario.h"
#include "sim/stats.h"

namespace satin {
namespace {

struct ProbeOutcome {
  sim::Accumulator delays;   // detection latency per introspection round
  int rounds = 0;
  int detected = 0;
  double max_benign = 0.0;
};

ProbeOutcome measure(bool with_load, double threshold_s) {
  scenario::Scenario s;
  if (with_load) {
    for (int c = 0; c < 6; ++c) {
      auto hog = std::make_unique<os::FunctionThread>(
          "load" + std::to_string(c), [](os::OsContext&) {
            return os::ComputeAction{sim::Duration::from_ms(1), nullptr};
          });
      hog->pin_to_core(c);
      s.os().add_thread(std::move(hog));
    }
  }
  attack::KProberConfig config;
  config.mode = attack::ProbeMode::kUserLevel;
  config.threshold_s = threshold_s;
  attack::KProber prober(s.os(), config);
  ProbeOutcome out;
  sim::Time entry;
  bool counted = true;  // ignore warm-up detections
  prober.set_on_detect([&](hw::CoreId, sim::Time when, sim::Duration) {
    if (!counted && when >= entry) {
      counted = true;
      ++out.detected;
      out.delays.add((when - entry).sec());
    }
  });
  prober.deploy();
  s.run_for(sim::Duration::from_ms(50));  // warm-up
  s.tsp().install_timer_service([&s](std::shared_ptr<hw::SecureSession> ss) {
    // A PKM-style whole-kernel check: ~80 ms.
    s.engine().schedule_after(sim::Duration::from_ms(80),
                              [ss] { ss->complete(); });
  });
  for (int i = 0; i < 25; ++i) {
    ++out.rounds;
    counted = false;
    entry = s.now() + sim::Duration::from_ms(200);
    s.platform().timer().program_secure(i % 6, entry);
    s.run_for(sim::Duration::from_sec(1));
  }
  out.max_benign = prober.max_benign_staleness_s();
  return out;
}

}  // namespace
}  // namespace satin

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  bench::heading("User-level prober detection delay Tns_delay (§III-B1)");

  const auto idle = measure(false, 1.8e-3);
  bench::subheading("lightly loaded system (paper's §III-B1 setting)");
  bench::text_row("rounds detected",
                  std::to_string(idle.detected) + "/" +
                      std::to_string(idle.rounds));
  bench::sci_row("Tns_delay avg/max", {idle.delays.mean(), idle.delays.max()},
                 "(paper: < 5.97e-3 s)");
  bench::sci_row("whole-kernel check", {8.04e-2},
                 "(the event being detected is ~40x longer)");

  const auto loaded = measure(true, 1.8e-3);
  bench::subheading("competing CFS load, same 1.8e-3 threshold");
  bench::text_row("rounds detected",
                  std::to_string(loaded.detected) + "/" +
                      std::to_string(loaded.rounds),
                  "(delays now include scheduler quanta)");
  bench::sci_row("observed delay avg/max",
                 {loaded.delays.mean(), loaded.delays.max()},
                 "(unstable: §III-B2's motivation for KProber-II)");
  std::printf(
      "\nunder load the CFS prober's own reports stall for multi-ms\n"
      "scheduler quanta, so the availability signal drowns in benign\n"
      "staleness — exactly why TZ-Evader moves to the kernel-level\n"
      "RT-scheduled KProber-II (§III-C).\n");
  return 0;
}
