// Fig. 3 — "Race Condition Between Two Worlds on Multi-Core System".
//
// The paper's figure is a timing diagram; this bench prints a *measured*
// instance of every event on it, for both outcomes of the race:
//
//   secure world:  t_start --Ts_switch--> scan --S*Ts_1byte--> touches
//                  the first malicious byte
//   normal world:  t_start --Tns_delay--> realizes a core entered the
//                  secure world --Tns_recover--> traces are benign
//
// Against SATIN's area 14 the touch beats the recovery (alarm); against
// the PKM whole-kernel pass the recovery beats the touch (evasion) —
// Eq. 1 decided both, on the same attacker.
#include <chrono>
#include <vector>

#include "attack/prober.h"
#include "attack/rootkit.h"
#include "bench/common.h"
#include "core/satin.h"
#include "os/system_map.h"
#include "scenario/scenario.h"

namespace satin {
namespace {

struct Timeline {
  sim::Time t_start;        // secure timer interrupt (core frozen)
  sim::Time handler_start;  // after Ts_switch
  sim::Time detected;       // prober flags the core
  sim::Time recovered;      // last malicious byte restored
  sim::Time touch;          // scan cursor reaches the hijacked entry
  sim::Time scan_end;
  bool alarm = false;
  bool have_detection = false;
  bool have_recovery = false;
};

sim::Time first_at_or_after(const std::vector<sim::Time>& events,
                            sim::Time from, bool* found) {
  for (const sim::Time& t : events) {
    if (t >= from) {
      *found = true;
      return t;
    }
  }
  *found = false;
  return sim::Time::zero();
}

Timeline run_one_round(const core::SatinConfig& satin_config) {
  scenario::Scenario s;
  core::Satin satin(s.platform(), s.kernel(), s.tsp(), satin_config);
  satin.checker().authorize_boot_state();

  attack::Rootkit kit(s.os(), s.platform().rng().fork("fig3-kit"));
  kit.add_gettid_trace();
  Timeline tl;
  std::vector<sim::Time> detections;
  std::vector<sim::Time> recoveries;
  attack::KProber prober(s.os(), attack::KProberConfig{});
  prober.set_on_detect([&](hw::CoreId, sim::Time when, sim::Duration) {
    detections.push_back(when);
    if (kit.installed() && !kit.recovering()) {
      kit.begin_recovery(hw::CoreType::kLittleA53, [&] {
        recoveries.push_back(s.platform().engine().now());
        if (!prober.any_flagged() && !kit.installed()) kit.install();
      });
    }
  });
  prober.set_on_clear([&](hw::CoreId, sim::Time) {
    if (!prober.any_flagged() && !kit.installed() && !kit.recovering()) {
      kit.install();
    }
  });
  prober.deploy();
  s.run_for(sim::Duration::from_ms(10));  // prober warm-up
  satin.start();
  kit.install();

  // Run until the round that scans the hijack's area completes.
  const std::size_t gettid =
      s.kernel().syscall_entry_offset(os::kGettidSyscallNr);
  const int target_area = satin.area_of_offset(gettid);
  while (satin.checker().check_count(target_area) == 0 &&
         s.now() < sim::Time::from_sec(2000)) {
    s.run_for(sim::Duration::from_sec(1));
  }
  satin.stop();
  for (const core::RoundRecord& r : satin.round_records()) {
    if (r.area != target_area) continue;
    tl.t_start = r.entry;
    tl.handler_start = r.handler_start;
    tl.scan_end = r.scan_end;
    tl.alarm = r.alarm;
    const auto& area =
        satin.checker().areas().at(static_cast<std::size_t>(target_area));
    tl.touch = r.handler_start +
               sim::Duration::from_sec_f(
                   r.per_byte_s * static_cast<double>(gettid - area.offset));
    break;
  }
  // Attribute the detection/recovery that belong to the target round.
  tl.detected = first_at_or_after(detections, tl.t_start, &tl.have_detection);
  tl.recovered =
      first_at_or_after(recoveries, tl.t_start, &tl.have_recovery);
  return tl;
}

void print_timeline(const char* title, const Timeline& tl) {
  bench::subheading(title);
  auto rel = [&](sim::Time t) { return (t - tl.t_start).sec(); };
  bench::sci_row("t_start (secure entry)", {0.0});
  bench::sci_row("+ Ts_switch -> scan", {rel(tl.handler_start)});
  if (tl.have_detection && tl.detected >= tl.t_start) {
    bench::sci_row("+ Tns_delay -> detected", {rel(tl.detected)});
  }
  if (tl.have_recovery && tl.recovered >= tl.t_start) {
    bench::sci_row("+ Tns_recover -> hidden", {rel(tl.recovered)});
  }
  bench::sci_row("scan touches hijack", {rel(tl.touch)});
  bench::sci_row("scan ends", {rel(tl.scan_end)});
  bench::text_row("outcome", tl.alarm ? "ALARM (defender won)"
                                      : "no alarm (attacker hid in time)");
}

}  // namespace
}  // namespace satin

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  bench::heading("Fig. 3: the race, measured (times relative to t_start, s)");
  const auto bench_start = std::chrono::steady_clock::now();

  // SATIN: area 14 (~598 KB, hijack 200 KB deep) — touch < recovery.
  core::SatinConfig satin_config;
  satin_config.tp_s = 2.0;
  const Timeline satin_tl = run_one_round(satin_config);
  print_timeline("vs SATIN (area 14 scan)", satin_tl);

  // PKM baseline: whole-kernel pass — recovery < touch (9.5 MB deep).
  const Timeline pkm_tl =
      run_one_round(core::make_pkm_baseline_config(2.0, true, true));
  print_timeline("vs PKM whole-kernel pass", pkm_tl);

  std::printf(
      "\nEq. 1: the attacker escapes iff Ts_switch + S*Ts_1byte >\n"
      "Tns_delay + Tns_recover. Same attacker, same constants — only S\n"
      "(the hijack's depth in the scanned range) differs.\n");
  bench::json_row("bench_fig3_race_timeline", 2, 1,
                  std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - bench_start)
                      .count());
  return 0;
}
