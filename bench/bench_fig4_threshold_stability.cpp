// Fig. 4 — KProber Probing Threshold Stability.
//
// Box-and-whisker statistics of the 50-window thresholds per probing
// period: medians rise with the period, whiskers "only go up slightly",
// and only the 300 s column grows a few >1e-3 s outliers.
//
// One trial per period, fanned over --jobs=J workers: each trial samples
// its own ThresholdSampler seeded from (root seed, period index), so the
// table is bit-identical for any J.
#include "attack/threshold_sampler.h"
#include "bench/common.h"
#include "sim/parallel.h"
#include "sim/stats.h"

namespace {

struct PeriodRow {
  satin::sim::BoxStats box;
  int over_1ms = 0;
};

}  // namespace

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  hw::TimingParams timing;
  const int jobs = obs.jobs(/*fallback=*/1);
  const double periods[] = {8.0, 16.0, 30.0, 120.0, 300.0};
  constexpr std::size_t kPeriods = sizeof(periods) / sizeof(periods[0]);

  sim::TrialRunnerOptions options;
  options.jobs = jobs;
  options.flight_ring = obs.flight_ring();
  options.root_seed = 4;
  sim::TrialRunner runner(options);
  const std::vector<PeriodRow> rows = runner.run_collect(
      kPeriods, [&timing, &periods](const sim::TrialContext& ctx) {
        attack::ThresholdSampler sampler(timing.cross_core,
                                         sim::Rng(ctx.seed), 6);
        std::vector<double> samples;
        for (int i = 0; i < 50; ++i) {
          samples.push_back(
              sampler.sample_window_max_seconds(periods[ctx.index]));
        }
        PeriodRow row;
        row.box = sim::make_box_stats(samples);
        for (double o : row.box.outliers) {
          if (o > 1e-3) ++row.over_1ms;
        }
        return row;
      });

  bench::heading("Fig. 4: KProber probing-threshold stability (s)");
  bench::columns("Period",
                 {"whisk-lo", "Q1", "median", "Q3", "whisk-hi", "outliers"});
  for (std::size_t i = 0; i < kPeriods; ++i) {
    const PeriodRow& row = rows[i];
    bench::sci_row(std::to_string(static_cast<int>(periods[i])) + " s",
                   {row.box.whisker_low, row.box.q1, row.box.median,
                    row.box.q3, row.box.whisker_high,
                    static_cast<double>(row.box.outliers.size())},
                   row.over_1ms > 0 ? "(" + std::to_string(row.over_1ms) +
                                          " outliers > 1e-3 s)"
                                    : "");
  }
  std::printf(
      "\npaper: medians rise 2.6e-4 -> 6.6e-4 with the period; upper\n"
      "whiskers rise only slightly; few >1e-3 s outliers at 300 s.\n");
  bench::json_row("bench_fig4_threshold_stability", runner.trials_run(), jobs,
                  runner.wall_seconds());
  return 0;
}
