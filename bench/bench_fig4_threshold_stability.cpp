// Fig. 4 — KProber Probing Threshold Stability.
//
// Box-and-whisker statistics of the 50-window thresholds per probing
// period: medians rise with the period, whiskers "only go up slightly",
// and only the 300 s column grows a few >1e-3 s outliers.
#include "attack/threshold_sampler.h"
#include "bench/common.h"
#include "sim/stats.h"

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  hw::TimingParams timing;
  attack::ThresholdSampler sampler(timing.cross_core, sim::Rng(4), 6);

  bench::heading("Fig. 4: KProber probing-threshold stability (s)");
  bench::columns("Period",
                 {"whisk-lo", "Q1", "median", "Q3", "whisk-hi", "outliers"});
  for (double period : {8.0, 16.0, 30.0, 120.0, 300.0}) {
    std::vector<double> samples;
    for (int i = 0; i < 50; ++i) {
      samples.push_back(sampler.sample_window_max_seconds(period));
    }
    const sim::BoxStats box = sim::make_box_stats(samples);
    int over_1ms = 0;
    for (double o : box.outliers) {
      if (o > 1e-3) ++over_1ms;
    }
    bench::sci_row(std::to_string(static_cast<int>(period)) + " s",
                   {box.whisker_low, box.q1, box.median, box.q3,
                    box.whisker_high,
                    static_cast<double>(box.outliers.size())},
                   over_1ms > 0 ? "(" + std::to_string(over_1ms) +
                                      " outliers > 1e-3 s)"
                                : "");
  }
  std::printf(
      "\npaper: medians rise 2.6e-4 -> 6.6e-4 with the period; upper\n"
      "whiskers rise only slightly; few >1e-3 s outliers at 300 s.\n");
  return 0;
}
