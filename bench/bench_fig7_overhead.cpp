// Fig. 7 — SATIN Overhead on mini-UnixBench.
//
// Runs the 12-program suite with and without SATIN's self-activation, in
// the paper's 1-task and 6-task settings, and prints the normalized
// degradation per program plus the suite average. The paper reports
// 0.711% (1-task) / 0.848% (6-task) overall, with `file copy 256B`
// (3.556%) and `context switching` (3.912%) as the worst bars. SATIN runs
// with an aggressive wake-up period here so the measurement window stays
// short; see EXPERIMENTS.md for the calibration discussion.
#include "bench/common.h"
#include "core/satin.h"
#include "scenario/scenario.h"
#include "workload/unixbench.h"

namespace satin {
namespace {

std::vector<workload::UnixBenchHarness::Result> run_suite(bool with_satin,
                                                          int copies) {
  scenario::Scenario s;
  core::SatinConfig config;
  config.tp_s = 0.8;  // machine round every 0.8 s => per-core ~4.8 s
  core::Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  if (with_satin) satin.start();
  // Let the wake-up queue settle past the boot burst (all six cores take
  // their first round within [0, 2*tp]) so measurement windows see the
  // steady per-core intrusion rate.
  s.run_for(sim::Duration::from_sec(5));
  workload::UnixBenchHarness harness(s.os());
  return harness.run_suite(sim::Duration::from_sec(30), copies);
}

void run_case(int copies, double paper_overall) {
  const auto base = run_suite(false, copies);
  const auto with = run_suite(true, copies);
  const auto rows = workload::compare_runs(base, with);
  bench::subheading(std::to_string(copies) + "-task");
  bench::columns("Program", {"baseline", "with-SATIN", "degrad-%"});
  for (const auto& r : rows) {
    bench::sci_row(r.name,
                   {r.baseline_score, r.satin_score, 100.0 * r.degradation});
  }
  bench::sci_row("OVERALL (mean %)",
                 {100.0 * workload::mean_degradation(rows)},
                 "(paper: " + std::to_string(paper_overall) + "%)");
}

}  // namespace
}  // namespace satin

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  bench::heading("Fig. 7: SATIN overhead, mini-UnixBench");
  run_case(1, 0.711);
  run_case(6, 0.848);
  std::printf(
      "\npaper shape: sub-1%% overall; worst bars are file copy 256B\n"
      "(3.556%%) and context switching (3.912%%).\n");
  return 0;
}
