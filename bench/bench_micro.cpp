// Micro-benchmarks (google-benchmark): the real computational kernels of
// the simulator — hash functions over kernel-sized buffers, event-queue
// throughput, TOCTTOU scan bookkeeping.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "bench/common.h"
#include "hw/memory.h"
#include "obs/flight/recorder.h"
#include "secure/digest_cache.h"
#include "secure/hash.h"
#include "sim/engine.h"
#include "sim/event_pool.h"
#include "sim/rng.h"

// --- Allocation accounting ----------------------------------------------
//
// Global operator new/delete are replaced with counting shims so the
// event-churn benches can report allocs_per_event. The PR-5 engine
// contract is that the steady-state number is exactly 0 (slab-pooled
// event states, inline callbacks, retained queue storage) and CI gates
// on the reported counter.

namespace {
std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(alignment, size)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

std::vector<std::uint8_t> make_buffer(std::size_t size) {
  std::vector<std::uint8_t> buf(size);
  satin::sim::Rng rng(1);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
  return buf;
}

void BM_HashDjb2(benchmark::State& state) {
  const auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(satin::secure::hash_djb2(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashDjb2)->Arg(4096)->Arg(431360)->Arg(876616);

void BM_HashFnv1a(benchmark::State& state) {
  const auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(satin::secure::hash_fnv1a(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashFnv1a)->Arg(4096)->Arg(876616);

void BM_HashSdbm(benchmark::State& state) {
  const auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(satin::secure::hash_sdbm(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashSdbm)->Arg(4096)->Arg(876616);

void BM_EngineScheduleFire(benchmark::State& state) {
  satin::sim::Engine engine;
  std::int64_t n = 0;
  for (auto _ : state) {
    engine.schedule_after(satin::sim::Duration::from_ns(++n), [] {});
    engine.step();
  }
}
BENCHMARK(BM_EngineScheduleFire);

// --- Event churn (zero-allocation steady state) --------------------------
//
// Each bench warms the engine past every lazily-grown capacity (pool
// slabs, wheel bucket vectors, heap storage), then measures the hot loop
// and reports allocs_per_event. Expected value after PR 5: exactly 0.

// The 250 Hz scheduler-tick pattern: every fired tick schedules the next
// one 4 ms out — dense periodic traffic on the timer wheel's O(1) path.
void BM_EventChurnPeriodicTick(benchmark::State& state) {
  satin::sim::Engine engine;
  // Warm-up. Each 4 ms hop lands in exactly one wheel slot ~60 slots
  // ahead, so a tick loop alone would take thousands of iterations to
  // touch all 1024 bucket vectors; seed one event into every bucket
  // instead so each vector reaches its steady capacity deterministically.
  for (std::size_t b = 0; b < satin::sim::Engine::kWheelBuckets; ++b) {
    engine.schedule_after(
        satin::sim::Duration::from_ps(
            static_cast<std::int64_t>(b) << satin::sim::Engine::kBucketShift) +
            satin::sim::Duration::from_us(1),
        [] {});
  }
  engine.run_all();
  for (int i = 0; i < 128; ++i) {  // settle the tick pattern itself
    engine.schedule_after(satin::sim::Duration::from_ms(4), [] {});
    engine.step();
  }
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t events = 0;
  for (auto _ : state) {
    engine.schedule_after(satin::sim::Duration::from_ms(4), [] {});
    engine.step();
    ++events;
  }
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - before;
  state.counters["allocs_per_event"] =
      events > 0 ? static_cast<double>(allocs) / static_cast<double>(events)
                 : 0.0;
}
BENCHMARK(BM_EventChurnPeriodicTick);

// --- Flight-recorder overhead --------------------------------------------
//
// The same periodic-tick churn with a FlightRecorder installed: every
// engine commit now also appends one 28-byte FlightRecord. The recorder
// preallocates everything at construction (ring storage, spill buffer,
// encode buffer), so allocs_per_event must stay exactly 0 in both modes —
// the same gate CI applies to the flight-off churn benches. The delta
// vs BM_EventChurnPeriodicTick is the per-event recording cost.

void churn_with_flight(benchmark::State& state,
                       satin::obs::FlightRecorder& recorder) {
  satin::sim::Engine engine;
  satin::obs::install_flight(&recorder);
  for (std::size_t b = 0; b < satin::sim::Engine::kWheelBuckets; ++b) {
    engine.schedule_after(
        satin::sim::Duration::from_ps(
            static_cast<std::int64_t>(b) << satin::sim::Engine::kBucketShift) +
            satin::sim::Duration::from_us(1),
        [] {});
  }
  engine.run_all();
  for (int i = 0; i < 128; ++i) {
    engine.schedule_after(satin::sim::Duration::from_ms(4), [] {});
    engine.step();
  }
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t events = 0;
  for (auto _ : state) {
    engine.schedule_after(satin::sim::Duration::from_ms(4), [] {});
    engine.step();
    ++events;
  }
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - before;
  satin::obs::install_flight(nullptr);
  state.counters["allocs_per_event"] =
      events > 0 ? static_cast<double>(allocs) / static_cast<double>(events)
                 : 0.0;
  state.counters["flight_commits"] =
      static_cast<double>(recorder.commits());
}

// Ring mode: the bounded-capture configuration CI's divergence audit uses
// for long runs. Steady state overwrites in place.
void BM_EventChurnPeriodicTickFlightRing(benchmark::State& state) {
  satin::obs::FlightRecorder::Options opts;
  opts.ring = 1u << 16;
  satin::obs::FlightRecorder recorder(opts);
  churn_with_flight(state, recorder);
}
BENCHMARK(BM_EventChurnPeriodicTickFlightRing);

// Spill mode: full-stream capture. /dev/null sinks the fwrite()s so the
// bench measures encode+buffer cost, not disk bandwidth.
void BM_EventChurnPeriodicTickFlightSpill(benchmark::State& state) {
  satin::obs::FlightRecorder::Options opts;
  opts.path = "/dev/null";
  satin::obs::FlightRecorder recorder(opts);
  churn_with_flight(state, recorder);
}
BENCHMARK(BM_EventChurnPeriodicTickFlightSpill);

// Far-future traffic (watchdogs, introspection periods): a standing
// population of ~1k events rides the overflow binary heap; each round
// fires the earliest and schedules a replacement 500 ms out.
void BM_EventChurnFarFuture(benchmark::State& state) {
  satin::sim::Engine engine;
  for (int i = 0; i < 1024; ++i) {
    engine.schedule_after(satin::sim::Duration::from_ms(500 + i % 7), [] {});
  }
  for (int i = 0; i < 128; ++i) {  // settle schedule-one/fire-one steady state
    engine.schedule_after(satin::sim::Duration::from_ms(500), [] {});
    engine.step();
  }
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t events = 0;
  for (auto _ : state) {
    engine.schedule_after(satin::sim::Duration::from_ms(500), [] {});
    engine.step();
    ++events;
  }
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - before;
  state.counters["allocs_per_event"] =
      events > 0 ? static_cast<double>(allocs) / static_cast<double>(events)
                 : 0.0;
}
BENCHMARK(BM_EventChurnFarFuture);

// Speculative timer traffic: most scheduled events are cancelled before
// they fire (timer reprogramming). One round = one wheel bucket of time:
// 8 doomed events, 1 live probe, drain. Advancing by exactly one bucket
// keeps per-bucket density identical across revolutions, so warm-up
// provably reaches every retained capacity.
void BM_EventChurnScheduleCancel(benchmark::State& state) {
  satin::sim::Engine engine;
  const satin::sim::Duration bucket = satin::sim::Duration::from_ps(
      std::int64_t{1} << satin::sim::Engine::kBucketShift);
  auto round = [&engine, bucket] {
    satin::sim::EventHandle doomed[8];
    for (auto& h : doomed) {
      h = engine.schedule_after(satin::sim::Duration::from_us(40), [] {});
    }
    for (auto& h : doomed) h.cancel();
    engine.schedule_after(satin::sim::Duration::from_us(30), [] {});
    engine.run_for(bucket);
  };
  for (int i = 0; i < 1200; ++i) round();  // > one full wheel revolution
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  std::uint64_t events = 0;
  for (auto _ : state) {
    round();
    events += 9;
  }
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - before;
  state.counters["allocs_per_event"] =
      events > 0 ? static_cast<double>(allocs) / static_cast<double>(events)
                 : 0.0;
  state.counters["pool_reuse_ratio"] =
      engine.pool_reuses() > 0
          ? static_cast<double>(engine.pool_reuses()) /
                static_cast<double>(engine.pool_reuses() +
                                    engine.pool_slab_grows() *
                                        satin::sim::EventPool::kSlabSlots)
          : 0.0;
}
BENCHMARK(BM_EventChurnScheduleCancel);

// --- Draw pipeline (PR 8) ------------------------------------------------
//
// The duel is draw-bound (~672M truncated normals per full
// bench_satin_detection run), so these benches measure the exact hot
// paths --batch=K buys: the MT block refill and the batched distribution
// kernels, each against its scalar per-draw oracle. All streams
// preallocate their block at construction, so the steady state sits
// under the same zero-allocation gate as the event churn benches:
// allocs_per_draw must be exactly 0.

constexpr double kDrawMean = 1.55e-4;   // cross-core delay model params
constexpr double kDrawStddev = 3.5e-5;
constexpr double kDrawLo = 0.95e-4;
constexpr double kDrawHi = 2.6e-4;

void BM_MtBlockRefill(benchmark::State& state) {
  satin::sim::Mt19937_64 engine(42);
  std::vector<std::uint64_t> block(
      static_cast<std::size_t>(state.range(0)));
  std::uint64_t draws = 0;
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (auto _ : state) {
    engine.generate_block(block.data(), block.size());
    benchmark::DoNotOptimize(block.data());
    draws += block.size();
  }
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - before;
  state.SetItemsProcessed(static_cast<std::int64_t>(draws));
  state.counters["allocs_per_draw"] =
      draws > 0 ? static_cast<double>(allocs) / static_cast<double>(draws)
                : 0.0;
}
BENCHMARK(BM_MtBlockRefill)->Arg(312)->Arg(4096);

void BM_MtPerCallDraw(benchmark::State& state) {
  satin::sim::Mt19937_64 engine(42);
  std::uint64_t draws = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine());
    ++draws;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(draws));
}
BENCHMARK(BM_MtPerCallDraw);

// One template for every scalar-vs-batched stream pair: range(0) selects
// the mode (0 = scalar oracle, 1 = batched block pipeline), so the two
// rows print adjacent and the ratio reads off directly.
template <typename Stream, typename MakeStream>
void draw_stream_bench(benchmark::State& state, const MakeStream& make) {
  const auto mode = state.range(0) == 0 ? satin::sim::DrawMode::kScalar
                                        : satin::sim::DrawMode::kBatched;
  Stream stream = make(satin::sim::Rng(1234).fork("bench"), mode);
  // Prime one refill so batched steady state excludes construction.
  benchmark::DoNotOptimize(stream.next());
  std::uint64_t draws = 0;
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  double sink = 0.0;
  for (auto _ : state) {
    sink += stream.next();
    ++draws;
  }
  benchmark::DoNotOptimize(sink);
  const std::uint64_t allocs =
      g_allocs.load(std::memory_order_relaxed) - before;
  state.SetItemsProcessed(static_cast<std::int64_t>(draws));
  state.counters["allocs_per_draw"] =
      draws > 0 ? static_cast<double>(allocs) / static_cast<double>(draws)
                : 0.0;
  state.SetLabel(state.range(0) == 0 ? "scalar" : "batched");
}

void BM_DrawTruncatedNormal(benchmark::State& state) {
  draw_stream_bench<satin::sim::TruncatedNormalStream>(
      state, [](satin::sim::Rng rng, satin::sim::DrawMode mode) {
        return satin::sim::TruncatedNormalStream(
            std::move(rng), kDrawMean, kDrawStddev, kDrawLo, kDrawHi, mode);
      });
}
BENCHMARK(BM_DrawTruncatedNormal)->Arg(0)->Arg(1);

void BM_DrawExponential(benchmark::State& state) {
  draw_stream_bench<satin::sim::ExponentialStream>(
      state, [](satin::sim::Rng rng, satin::sim::DrawMode mode) {
        return satin::sim::ExponentialStream(std::move(rng), kDrawMean, mode);
      });
}
BENCHMARK(BM_DrawExponential)->Arg(0)->Arg(1);

void BM_DrawLognormal(benchmark::State& state) {
  draw_stream_bench<satin::sim::LognormalStream>(
      state, [](satin::sim::Rng rng, satin::sim::DrawMode mode) {
        // The spike model's parameterization (log-median 2.3e-4, σ 0.55).
        return satin::sim::LognormalStream(std::move(rng), -8.377,  0.55,
                                           mode);
      });
}
BENCHMARK(BM_DrawLognormal)->Arg(0)->Arg(1);

void BM_DrawCanonical(benchmark::State& state) {
  draw_stream_bench<satin::sim::CanonicalStream>(
      state, [](satin::sim::Rng rng, satin::sim::DrawMode mode) {
        return satin::sim::CanonicalStream(std::move(rng), mode);
      });
}
BENCHMARK(BM_DrawCanonical)->Arg(0)->Arg(1);

void BM_MemoryTimedWriteUnderScan(benchmark::State& state) {
  satin::hw::Memory memory(1 << 20);
  auto token =
      memory.begin_scan(satin::sim::Time::zero(), 0, 1 << 20, 1.0e6);
  const std::vector<std::uint8_t> data(8, 0xAB);
  std::size_t offset = 0;
  for (auto _ : state) {
    memory.write(satin::sim::Time::from_ns(1), offset, data);
    offset = (offset + 64) & ((1 << 20) - 64);
  }
  memory.cancel_scan(token);
}
BENCHMARK(BM_MemoryTimedWriteUnderScan);

void BM_ScanBeginFinish(benchmark::State& state) {
  satin::hw::Memory memory(1 << 20);
  for (auto _ : state) {
    auto token =
        memory.begin_scan(satin::sim::Time::zero(), 0, 1 << 20, 1.0e6);
    benchmark::DoNotOptimize(memory.finish_scan(token));
  }
}
BENCHMARK(BM_ScanBeginFinish);

// --- Incremental digest cache ------------------------------------------
//
// Three regimes over a kernel-area-sized window (876,616 B, the largest
// Table-I area): cold (every chunk missed), warm all-clean (the O(1)
// generation fast path) and warm with K dirty chunks (re-hash K chunks +
// the cascaded suffix, resume across the clean prefix). The
// bytes_hashed_per_round counter reports how much real hashing each
// round did — the quantity the cache exists to shrink.

constexpr std::size_t kCacheWindow = 876'616;

void BM_DigestCacheCold(benchmark::State& state) {
  satin::hw::Memory memory(kCacheWindow);
  memory.poke(0, make_buffer(kCacheWindow));
  const auto view = memory.bytes();
  std::uint64_t rounds = 0, bytes_hashed = 0;
  for (auto _ : state) {
    // A fresh cache each round: every chunk misses (first-scan cost).
    satin::secure::DigestCache cache(satin::secure::HashKind::kDjb2, true);
    const auto out = cache.round_digest(memory, 0, view, true);
    benchmark::DoNotOptimize(out.digest);
    ++rounds;
    bytes_hashed += out.bytes_hashed;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kCacheWindow));
  state.counters["bytes_hashed_per_round"] =
      rounds > 0 ? static_cast<double>(bytes_hashed) / static_cast<double>(rounds)
                 : 0.0;
}
BENCHMARK(BM_DigestCacheCold);

void BM_DigestCacheWarmClean(benchmark::State& state) {
  satin::hw::Memory memory(kCacheWindow);
  memory.poke(0, make_buffer(kCacheWindow));
  const auto view = memory.bytes();
  satin::secure::DigestCache cache(satin::secure::HashKind::kDjb2, true);
  (void)cache.round_digest(memory, 0, view, true);  // warm up
  std::uint64_t rounds = 0, bytes_hashed = 0;
  for (auto _ : state) {
    const auto out = cache.round_digest(memory, 0, view, true);
    benchmark::DoNotOptimize(out.digest);
    ++rounds;
    bytes_hashed += out.bytes_hashed;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kCacheWindow));
  state.counters["bytes_hashed_per_round"] =
      rounds > 0 ? static_cast<double>(bytes_hashed) / static_cast<double>(rounds)
                 : 0.0;
}
BENCHMARK(BM_DigestCacheWarmClean);

// range(0) = K dirty chunks per round, spread across the window.
void BM_DigestCacheWarmDirty(benchmark::State& state) {
  satin::hw::Memory memory(kCacheWindow);
  memory.poke(0, make_buffer(kCacheWindow));
  const auto view = memory.bytes();
  satin::secure::DigestCache cache(satin::secure::HashKind::kDjb2, true);
  (void)cache.round_digest(memory, 0, view, true);
  const auto dirty = static_cast<std::size_t>(state.range(0));
  const std::size_t chunks = kCacheWindow / satin::hw::Memory::kChunkBytes;
  satin::sim::Rng rng(7);
  std::vector<std::uint8_t> one_byte{0};
  std::uint64_t rounds = 0, bytes_hashed = 0;
  for (auto _ : state) {
    for (std::size_t k = 0; k < dirty; ++k) {
      const auto chunk = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(chunks) - 1));
      one_byte[0] = static_cast<std::uint8_t>(rng.next_u64());
      memory.poke(chunk * satin::hw::Memory::kChunkBytes, one_byte);
    }
    const auto out = cache.round_digest(memory, 0, view, true);
    benchmark::DoNotOptimize(out.digest);
    ++rounds;
    bytes_hashed += out.bytes_hashed;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kCacheWindow));
  state.counters["bytes_hashed_per_round"] =
      rounds > 0 ? static_cast<double>(bytes_hashed) / static_cast<double>(rounds)
                 : 0.0;
}
BENCHMARK(BM_DigestCacheWarmDirty)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so --trace/--metrics are stripped before
// benchmark::Initialize sees them (it rejects unknown flags).
int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
