// Micro-benchmarks (google-benchmark): the real computational kernels of
// the simulator — hash functions over kernel-sized buffers, event-queue
// throughput, TOCTTOU scan bookkeeping.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "hw/memory.h"
#include "secure/digest_cache.h"
#include "secure/hash.h"
#include "sim/engine.h"
#include "sim/rng.h"

namespace {

std::vector<std::uint8_t> make_buffer(std::size_t size) {
  std::vector<std::uint8_t> buf(size);
  satin::sim::Rng rng(1);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
  return buf;
}

void BM_HashDjb2(benchmark::State& state) {
  const auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(satin::secure::hash_djb2(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashDjb2)->Arg(4096)->Arg(431360)->Arg(876616);

void BM_HashFnv1a(benchmark::State& state) {
  const auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(satin::secure::hash_fnv1a(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashFnv1a)->Arg(4096)->Arg(876616);

void BM_HashSdbm(benchmark::State& state) {
  const auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(satin::secure::hash_sdbm(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashSdbm)->Arg(4096)->Arg(876616);

void BM_EngineScheduleFire(benchmark::State& state) {
  satin::sim::Engine engine;
  std::int64_t n = 0;
  for (auto _ : state) {
    engine.schedule_after(satin::sim::Duration::from_ns(++n), [] {});
    engine.step();
  }
}
BENCHMARK(BM_EngineScheduleFire);

void BM_MemoryTimedWriteUnderScan(benchmark::State& state) {
  satin::hw::Memory memory(1 << 20);
  auto token =
      memory.begin_scan(satin::sim::Time::zero(), 0, 1 << 20, 1.0e6);
  const std::vector<std::uint8_t> data(8, 0xAB);
  std::size_t offset = 0;
  for (auto _ : state) {
    memory.write(satin::sim::Time::from_ns(1), offset, data);
    offset = (offset + 64) & ((1 << 20) - 64);
  }
  memory.cancel_scan(token);
}
BENCHMARK(BM_MemoryTimedWriteUnderScan);

void BM_ScanBeginFinish(benchmark::State& state) {
  satin::hw::Memory memory(1 << 20);
  for (auto _ : state) {
    auto token =
        memory.begin_scan(satin::sim::Time::zero(), 0, 1 << 20, 1.0e6);
    benchmark::DoNotOptimize(memory.finish_scan(token));
  }
}
BENCHMARK(BM_ScanBeginFinish);

// --- Incremental digest cache ------------------------------------------
//
// Three regimes over a kernel-area-sized window (876,616 B, the largest
// Table-I area): cold (every chunk missed), warm all-clean (the O(1)
// generation fast path) and warm with K dirty chunks (re-hash K chunks +
// the cascaded suffix, resume across the clean prefix). The
// bytes_hashed_per_round counter reports how much real hashing each
// round did — the quantity the cache exists to shrink.

constexpr std::size_t kCacheWindow = 876'616;

void BM_DigestCacheCold(benchmark::State& state) {
  satin::hw::Memory memory(kCacheWindow);
  memory.poke(0, make_buffer(kCacheWindow));
  const auto view = memory.bytes();
  std::uint64_t rounds = 0, bytes_hashed = 0;
  for (auto _ : state) {
    // A fresh cache each round: every chunk misses (first-scan cost).
    satin::secure::DigestCache cache(satin::secure::HashKind::kDjb2, true);
    const auto out = cache.round_digest(memory, 0, view, true);
    benchmark::DoNotOptimize(out.digest);
    ++rounds;
    bytes_hashed += out.bytes_hashed;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kCacheWindow));
  state.counters["bytes_hashed_per_round"] =
      rounds > 0 ? static_cast<double>(bytes_hashed) / static_cast<double>(rounds)
                 : 0.0;
}
BENCHMARK(BM_DigestCacheCold);

void BM_DigestCacheWarmClean(benchmark::State& state) {
  satin::hw::Memory memory(kCacheWindow);
  memory.poke(0, make_buffer(kCacheWindow));
  const auto view = memory.bytes();
  satin::secure::DigestCache cache(satin::secure::HashKind::kDjb2, true);
  (void)cache.round_digest(memory, 0, view, true);  // warm up
  std::uint64_t rounds = 0, bytes_hashed = 0;
  for (auto _ : state) {
    const auto out = cache.round_digest(memory, 0, view, true);
    benchmark::DoNotOptimize(out.digest);
    ++rounds;
    bytes_hashed += out.bytes_hashed;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kCacheWindow));
  state.counters["bytes_hashed_per_round"] =
      rounds > 0 ? static_cast<double>(bytes_hashed) / static_cast<double>(rounds)
                 : 0.0;
}
BENCHMARK(BM_DigestCacheWarmClean);

// range(0) = K dirty chunks per round, spread across the window.
void BM_DigestCacheWarmDirty(benchmark::State& state) {
  satin::hw::Memory memory(kCacheWindow);
  memory.poke(0, make_buffer(kCacheWindow));
  const auto view = memory.bytes();
  satin::secure::DigestCache cache(satin::secure::HashKind::kDjb2, true);
  (void)cache.round_digest(memory, 0, view, true);
  const auto dirty = static_cast<std::size_t>(state.range(0));
  const std::size_t chunks = kCacheWindow / satin::hw::Memory::kChunkBytes;
  satin::sim::Rng rng(7);
  std::vector<std::uint8_t> one_byte{0};
  std::uint64_t rounds = 0, bytes_hashed = 0;
  for (auto _ : state) {
    for (std::size_t k = 0; k < dirty; ++k) {
      const auto chunk = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(chunks) - 1));
      one_byte[0] = static_cast<std::uint8_t>(rng.next_u64());
      memory.poke(chunk * satin::hw::Memory::kChunkBytes, one_byte);
    }
    const auto out = cache.round_digest(memory, 0, view, true);
    benchmark::DoNotOptimize(out.digest);
    ++rounds;
    bytes_hashed += out.bytes_hashed;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kCacheWindow));
  state.counters["bytes_hashed_per_round"] =
      rounds > 0 ? static_cast<double>(bytes_hashed) / static_cast<double>(rounds)
                 : 0.0;
}
BENCHMARK(BM_DigestCacheWarmDirty)->Arg(1)->Arg(8)->Arg(64);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so --trace/--metrics are stripped before
// benchmark::Initialize sees them (it rejects unknown flags).
int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
