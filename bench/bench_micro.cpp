// Micro-benchmarks (google-benchmark): the real computational kernels of
// the simulator — hash functions over kernel-sized buffers, event-queue
// throughput, TOCTTOU scan bookkeeping.
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "hw/memory.h"
#include "secure/hash.h"
#include "sim/engine.h"
#include "sim/rng.h"

namespace {

std::vector<std::uint8_t> make_buffer(std::size_t size) {
  std::vector<std::uint8_t> buf(size);
  satin::sim::Rng rng(1);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_u64());
  return buf;
}

void BM_HashDjb2(benchmark::State& state) {
  const auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(satin::secure::hash_djb2(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashDjb2)->Arg(4096)->Arg(431360)->Arg(876616);

void BM_HashFnv1a(benchmark::State& state) {
  const auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(satin::secure::hash_fnv1a(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashFnv1a)->Arg(4096)->Arg(876616);

void BM_HashSdbm(benchmark::State& state) {
  const auto buf = make_buffer(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(satin::secure::hash_sdbm(buf));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HashSdbm)->Arg(4096)->Arg(876616);

void BM_EngineScheduleFire(benchmark::State& state) {
  satin::sim::Engine engine;
  std::int64_t n = 0;
  for (auto _ : state) {
    engine.schedule_after(satin::sim::Duration::from_ns(++n), [] {});
    engine.step();
  }
}
BENCHMARK(BM_EngineScheduleFire);

void BM_MemoryTimedWriteUnderScan(benchmark::State& state) {
  satin::hw::Memory memory(1 << 20);
  auto token =
      memory.begin_scan(satin::sim::Time::zero(), 0, 1 << 20, 1.0e6);
  const std::vector<std::uint8_t> data(8, 0xAB);
  std::size_t offset = 0;
  for (auto _ : state) {
    memory.write(satin::sim::Time::from_ns(1), offset, data);
    offset = (offset + 64) & ((1 << 20) - 64);
  }
  memory.cancel_scan(token);
}
BENCHMARK(BM_MemoryTimedWriteUnderScan);

void BM_ScanBeginFinish(benchmark::State& state) {
  satin::hw::Memory memory(1 << 20);
  for (auto _ : state) {
    auto token =
        memory.begin_scan(satin::sim::Time::zero(), 0, 1 << 20, 1.0e6);
    benchmark::DoNotOptimize(memory.finish_scan(token));
  }
}
BENCHMARK(BM_ScanBeginFinish);

}  // namespace

// Hand-rolled BENCHMARK_MAIN so --trace/--metrics are stripped before
// benchmark::Initialize sees them (it rejects unknown flags).
int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
