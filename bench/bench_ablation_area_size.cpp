// Ablation — introspection-area size vs detection (the Eq. 2 frontier).
//
// SATIN's guarantee comes from keeping every area below the race bound
// (1,218,351 B). Sweeping the partition granularity moves the hijacked
// entry's depth inside its area: once its scan-touch time exceeds the
// evader's hide time, detection collapses. Each setting runs an
// event-driven duel (its own Scenario, one trial per partitioning, fanned
// over --jobs=J workers); the crossover should straddle the closed-form
// bound. Every trial keeps the default platform seed — the sweep is a
// paired comparison across partitionings, not a seed study.
#include "bench/common.h"
#include "core/race_model.h"
#include "os/system_map.h"
#include "scenario/experiments.h"
#include "sim/parallel.h"

namespace {

struct AblationRow {
  double max_size = 0.0;
  double checks = 0.0;
  double alarms = 0.0;
  double rate = 0.0;
  std::size_t depth = 0;
};

}  // namespace

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  const int jobs = obs.jobs(/*fallback=*/1);
  const std::size_t bound =
      core::max_safe_area_bytes(core::worst_case_params(hw::TimingParams{}));
  bench::heading("Ablation: area size vs TZ-Evader detection");
  bench::text_row("guaranteed-escape bound (bytes)", std::to_string(bound),
                  "(Eq. 2 with the FASTEST core; paper's 1,218,351)");
  // Reproduction finding: the paper's bound guarantees escape beyond it,
  // but guaranteed *catch* needs the SLOWEST defender core vs the fastest
  // attacker: depth <= (threshold + recover_min - switch) / A53_max.
  const hw::TimingParams timing;
  const auto catch_bound = static_cast<std::size_t>(
      (timing.cross_core.worst_case_threshold_s + timing.recover_a53.min_s -
       timing.switch_max_s) /
      timing.hash_per_byte_a53.max_s);
  bench::text_row("guaranteed-catch bound (bytes)",
                  std::to_string(catch_bound),
                  "(slowest core; in between: probabilistic)");
  bench::columns("areas", {"max-size", "checks", "alarms", "rate"});

  const int targets[] = {19, 12, 10, 8, 6, 3, 1};
  constexpr std::size_t kTargets = sizeof(targets) / sizeof(targets[0]);
  sim::TrialRunnerOptions options;
  options.jobs = jobs;
  options.flight_ring = obs.flight_ring();
  sim::TrialRunner runner(options);
  const std::vector<AblationRow> rows = runner.run_collect(
      kTargets, [&targets](const sim::TrialContext& ctx) {
        const int target = targets[ctx.index];
        scenario::Scenario scenario;
        scenario::DuelConfig duel;
        if (target == 1) {
          duel.satin.whole_kernel_single_area = true;
        } else {
          duel.satin.areas_override = core::partition_even(
              scenario.kernel().map(), /*max_bytes=*/12'000'000, target);
        }
        duel.satin.tp_s = 1.0;
        duel.rounds_target = static_cast<std::uint64_t>(5 * target);
        const auto report = scenario::run_duel(scenario, duel);
        AblationRow row;
        row.max_size = static_cast<double>(
            target == 1 ? scenario.kernel().size()
                        : core::largest_area(duel.satin.areas_override));
        // What decides the race is the hijack's depth inside its own area.
        const std::size_t table_off =
            scenario.kernel().syscall_entry_offset(os::kGettidSyscallNr);
        row.depth = table_off;
        for (const auto& a : duel.satin.areas_override) {
          if (table_off >= a.offset && table_off < a.end()) {
            row.depth = table_off - a.offset;
          }
        }
        row.checks = static_cast<double>(report.target_area_rounds);
        row.alarms = static_cast<double>(report.target_area_alarms);
        row.rate = report.target_area_rounds == 0
                       ? 0.0
                       : static_cast<double>(report.target_area_alarms) /
                             static_cast<double>(report.target_area_rounds);
        if (auto* registry = obs::metrics()) {
          obs::snapshot_engine_metrics(scenario.engine(), *registry,
                                       /*include_wall=*/false);
        }
        return row;
      });

  for (std::size_t i = 0; i < kTargets; ++i) {
    const AblationRow& row = rows[i];
    bench::sci_row(std::to_string(targets[i]),
                   {row.max_size, row.checks, row.alarms, row.rate},
                   (row.depth <= bound ? "(depth " : "(DEPTH ") +
                       std::to_string(row.depth) +
                       (row.depth <= bound ? " within bound)" : " OVER bound)"));
  }
  std::printf(
      "\nthe determinant is the hijack's DEPTH inside its area: depths\n"
      "under the Eq.-2 bound are always caught; beyond it, detection\n"
      "degrades to the fraction of rounds whose (core speed, recovery)\n"
      "draw still reaches the byte — and to 0%% for the whole-kernel\n"
      "pass. The paper's 19-area layout keeps every possible depth under\n"
      "the bound.\n");
  bench::json_row("bench_ablation_area_size", runner.trials_run(), jobs,
                  runner.wall_seconds());
  return 0;
}
