// Shared output helpers for the reproduction benches.
//
// Every bench prints the paper's rows next to the simulator's, so the
// shape comparison (who wins, by what factor, where crossovers fall) is
// visible at a glance; EXPERIMENTS.md records the same numbers.
// Every bench also accepts --trace=<file> / --metrics=<file>: declare an
// ObsGuard first thing in main and the flags are consumed from argv, a
// global TraceRecorder/MetricsRegistry is installed for the run, and the
// files are written when the guard goes out of scope.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "obs/session.h"

namespace satin::bench {

using ObsGuard = obs::ObsSession;

inline void heading(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

inline void subheading(const std::string& title) {
  std::printf("\n-- %s --\n", title.c_str());
}

// A labelled row of scientific values with an optional paper reference.
inline void sci_row(const std::string& label, const std::vector<double>& values,
                    const std::string& note = "") {
  std::printf("%-26s", label.c_str());
  for (double v : values) std::printf("  %11.3e", v);
  if (!note.empty()) std::printf("   %s", note.c_str());
  std::printf("\n");
}

inline void text_row(const std::string& label, const std::string& value,
                     const std::string& note = "") {
  std::printf("%-26s  %18s", label.c_str(), value.c_str());
  if (!note.empty()) std::printf("   %s", note.c_str());
  std::printf("\n");
}

inline void columns(const std::string& label,
                    const std::vector<std::string>& cols) {
  std::printf("%-26s", label.c_str());
  for (const auto& c : cols) std::printf("  %11s", c.c_str());
  std::printf("\n");
}

// Machine-readable timing record for scripts/run_benches.sh: one
// `BENCHJSON {...}` line on STDERR. Stderr, never stdout: stdout (and the
// metrics snapshot) must stay bit-identical across --jobs values, and
// host wall-clock never is.
inline void json_row(const std::string& bench, std::size_t trials, int jobs,
                     double wall_s) {
  const double rate = wall_s > 0.0 ? static_cast<double>(trials) / wall_s : 0.0;
  std::fprintf(stderr,
               "BENCHJSON {\"bench\":\"%s\",\"trials\":%zu,\"jobs\":%d,"
               "\"wall_s\":%.6f,\"trials_per_s\":%.3f}\n",
               bench.c_str(), trials, jobs, wall_s, rate);
}

}  // namespace satin::bench
