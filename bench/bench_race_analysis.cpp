// §IV-C — Race Condition Analysis.
//
// Reproduces the closed-form bound (S <= 1,218,351 bytes; ~90% of the
// 11,916,240-byte kernel unprotected by a whole-kernel pass), a Monte
// Carlo over sampled timings, and event-driven spot duels against the
// PKM baseline across a ladder of trace depths: hijacks deep in the
// kernel (the GETTID entry among them) escape; traces inside the first
// ~1.2 MB are caught.
//
// Monte-Carlo batches and duels fan out over --jobs=J workers through
// sim::TrialRunner; the printed rows are bit-identical for any J (and,
// for the spot duels, for any --batch=K lockstep shard size).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "attack/evader.h"
#include "bench/common.h"
#include "core/race_model.h"
#include "core/satin.h"
#include "scenario/experiments.h"
#include "sim/batch.h"
#include "sim/fork.h"
#include "sim/parallel.h"
#include "sim/stats.h"

namespace satin {
namespace {

// Event-driven duel with the rootkit's trace forced to `offset`: a bare
// evader (KProber + a rootkit whose single trace sits at the probe
// offset) against the PKM baseline. Decomposed as a LockstepTrial so a
// BatchRunner can interleave it with shard-mates; the --batch=1 path
// drives the very same class to completion inline.
class SpotDuelTrial final : public sim::LockstepTrial {
 public:
  // Staged construction for COW fork branching (sim/fork.h): the
  // constructor runs everything a branch can share — trusted boot, prober
  // deployment and warm-up — and engage() arms the branch-specific trace
  // and starts both sides. None of the moved steps draws from the
  // platform RNG (trace bytes are plain memory reads), so staged ctor +
  // immediate engage() is draw-for-draw identical to the old one-shot
  // constructor (the fork-identity CI gate diffs exactly this).
  explicit SpotDuelTrial(sim::DrawMode mode)
      : s_(spot_config(mode)),
        baseline_(s_.platform(), s_.kernel(), s_.tsp(),
                  core::make_pkm_baseline_config(1.0, true, true)),
        kit_(s_.os(), s_.platform().rng().fork("probe-kit")),
        prober_(s_.os(), attack::KProberConfig{}) {
    baseline_.checker().authorize_boot_state();
    prober_.set_on_detect([this](hw::CoreId, sim::Time, sim::Duration) {
      if (kit_.installed() && !kit_.recovering()) {
        kit_.begin_recovery(hw::CoreType::kLittleA53, [this] {
          // Recovery can outlive a short stay; re-arm once the coast clears.
          if (!prober_.any_flagged() && !kit_.installed()) kit_.install();
        });
      }
    });
    prober_.set_on_clear([this](hw::CoreId, sim::Time) {
      // Re-arm only once NO core looks secure-held: overlapping rounds on
      // other cores may still be scanning.
      if (!prober_.any_flagged() && !kit_.installed() && !kit_.recovering()) {
        kit_.install();
      }
    });
    prober_.deploy();
    s_.run_for(sim::Duration::from_ms(10));  // prober warm-up
  }

  // One-shot path (the pre-fork run of record): optional idle engagement
  // ramp (--ramp-s; the prober stays deployed, nothing armed), then
  // engage immediately.
  SpotDuelTrial(std::size_t offset, sim::DrawMode mode, char* caught,
                double ramp_s = 0.0)
      : SpotDuelTrial(mode) {
    if (ramp_s > 0.0) s_.run_for(sim::Duration::from_sec_f(ramp_s));
    engage(offset, caught);
  }

  // Arms the rootkit trace at `offset` and starts the duel; call once.
  void engage(std::size_t offset, char* caught) {
    caught_ = caught;
    attack::TraceSpec trace;
    trace.name = "probe";
    trace.offset = offset;
    for (int i = 0; i < 8; ++i) {
      const auto b =
          s_.platform().memory().read(offset + static_cast<std::size_t>(i));
      trace.benign.push_back(b);
      trace.malicious.push_back(static_cast<std::uint8_t>(~b));
    }
    kit_.add_trace(trace);
    baseline_.start();
    kit_.install();
  }

  bool done() const override { return baseline_.rounds() >= 6; }
  void advance(sim::Duration quantum) override { s_.run_for(quantum); }
  void finish() override {
    baseline_.stop();
    if (auto* registry = obs::metrics()) {
      obs::snapshot_engine_metrics(s_.engine(), *registry,
                                   /*include_wall=*/false);
    }
    if (caught_ != nullptr) {
      *caught_ = static_cast<char>(baseline_.alarm_count() > 0);
    }
  }

 private:
  static scenario::ScenarioConfig spot_config(sim::DrawMode mode) {
    scenario::ScenarioConfig config;
    config.platform.draw_mode = mode;
    return config;
  }

  scenario::Scenario s_;
  core::Satin baseline_;
  attack::Rootkit kit_;
  attack::KProber prober_;
  char* caught_ = nullptr;
};

// One Monte-Carlo batch: draws per batch from a seed that depends only on
// (root seed, batch index), so the total is independent of --jobs.
int mc_escapes(std::uint64_t seed, int draws,
               const hw::TimingParams& timing) {
  sim::Rng rng(seed);
  int escapes = 0;
  for (int i = 0; i < draws; ++i) {
    core::RaceParams p;
    p.ts_switch_s = timing.sample_switch(rng).sec();
    // Random introspecting core: 4 A53 + 2 A57.
    const bool big = rng.index(6) >= 4;
    p.ts_1byte_s = (big ? timing.hash_per_byte_a57 : timing.hash_per_byte_a53)
                       .sample_seconds(rng);
    p.tns_sched_s = timing.kprober_sleep_s;
    p.tns_threshold_s = timing.cross_core.worst_case_threshold_s;
    p.tns_recover_s = timing.recover_a53.sample_seconds(rng);
    // Attack bytes "appear randomly in the kernel".
    const auto offset = static_cast<std::size_t>(rng.uniform_int(0, 11'916'239));
    if (core::attacker_escapes(p, offset)) ++escapes;
  }
  return escapes;
}

}  // namespace
}  // namespace satin

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  // Local flag: --ramp-s=<sim seconds> of idle engagement ramp before
  // each spot duel arms (prober deployed, nothing installed). Applied
  // identically on every execution path, so forked-vs-unforked stays an
  // apples-to-apples comparison; the default keeps today's output.
  double ramp_s = 0.0;
  {
    int out = 1;
    for (int i = 1; i < argc; ++i) {
      if (std::strncmp(argv[i], "--ramp-s=", 9) == 0) {
        ramp_s = std::atof(argv[i] + 9);
        if (!(ramp_s >= 0.0)) ramp_s = 0.0;
        continue;
      }
      argv[out++] = argv[i];
    }
    argc = out;
  }
  hw::TimingParams timing;
  const int jobs = obs.jobs(/*fallback=*/1);

  bench::heading("Race-condition analysis (Eq. 1 / Eq. 2, §IV-C)");
  const core::RaceParams worst = core::worst_case_params(timing);
  const std::size_t bound = core::max_safe_area_bytes(worst);
  bench::text_row("S bound (bytes)", std::to_string(bound),
                  "(paper: 1218351)");
  bench::text_row("kernel size (bytes)", "11916240");
  bench::sci_row("unprotected fraction",
                 {core::unprotected_fraction(worst, 11'916'240)},
                 "(paper: ~90%)");

  bench::subheading("Monte Carlo over sampled timings (100k draws)");
  constexpr int kBatches = 100;
  constexpr int kDrawsPerBatch = 1'000;
  sim::TrialRunnerOptions mc_options;
  mc_options.jobs = jobs;
  mc_options.flight_ring = obs.flight_ring();
  mc_options.root_seed = 11;
  sim::TrialRunner mc_runner(mc_options);
  const std::vector<int> batch_escapes = mc_runner.run_collect(
      kBatches, [&timing](const sim::TrialContext& ctx) {
        return mc_escapes(ctx.seed, kDrawsPerBatch, timing);
      });
  int escapes = 0;
  for (int e : batch_escapes) escapes += e;
  const int draws = kBatches * kDrawsPerBatch;
  bench::sci_row("evasion success vs full-kernel pass",
                 {static_cast<double>(escapes) / draws}, "(paper: ~0.90)");

  bench::subheading("Event-driven spot duels vs PKM baseline");
  // A ladder of trace depths straddling the Eq.-2 bound; every duel is an
  // independent trial (own Scenario), fanned over the worker pool.
  struct Probe {
    std::size_t offset;
    const char* note;
  };
  const Probe probes[] = {
      {9'558'264, "(paper: escapes — gettid, outside the first ~1.2 MB)"},
      {6'000'000, "(deep half of the kernel)"},
      {3'000'000, "(beyond the bound)"},
      {2'000'000, "(beyond the bound)"},
      {1'500'000, "(just beyond the bound)"},
      {1'100'000, "(just inside the bound)"},
      {400'000, "(inside the protected prefix)"},
      {100'000, "(near the kernel base)"},
  };
  constexpr std::size_t kProbeCount = sizeof(probes) / sizeof(probes[0]);
  sim::TrialRunnerOptions duel_options;
  duel_options.jobs = jobs;
  duel_options.flight_ring = obs.flight_ring();
  std::vector<char> caught(kProbeCount, 0);
  std::size_t duel_trials = 0;
  double duel_wall_s = 0.0;
  const int batch = obs.batch(/*fallback=*/1);
  const int branches = obs.branches(/*fallback=*/0);
  if (branches > 0 && batch > 1) {
    std::fprintf(stderr,
                 "bench_race_analysis: --branches and --batch are mutually "
                 "exclusive\n");
    return 2;
  }
  if (branches > 0) {
    // COW fork ladder (sim/fork.h): probes grouped into branch groups.
    // --fork-prefix=0 is the byte-identity oracle (each child replays its
    // duel from scratch under fresh sinks); --fork-prefix>0 builds ONE
    // staged trial per group — boot, prober deployment, warm-up, ramp —
    // and fork()s it, each child engaging its own trace offset against
    // the inherited copy-on-write image.
    const double prefix_s = obs.fork_prefix_s();
    const sim::TrialSeedSeq seeds(duel_options.root_seed);
    const auto fork_t0 = std::chrono::steady_clock::now();
    for (std::size_t base = 0; base < kProbeCount;
         base += static_cast<std::size_t>(branches)) {
      const std::size_t count = std::min(static_cast<std::size_t>(branches),
                                         kProbeCount - base);
      sim::ForkServerOptions fork_options;
      fork_options.jobs = jobs;
      fork_options.flight_ring = obs.flight_ring();
      fork_options.index_base = base;
      fork_options.marker_seed = [&seeds](std::size_t global) {
        return seeds.seed_for(global);
      };
      std::vector<std::string> payloads;
      if (prefix_s <= 0.0) {
        sim::ForkServer server(fork_options);
        payloads = server.run_collect(count, [&](std::size_t branch) {
          char c = 0;
          SpotDuelTrial trial(probes[base + branch].offset,
                              sim::DrawMode::kScalar, &c, ramp_s);
          while (!trial.done()) trial.advance(sim::Duration::from_sec(1));
          trial.finish();
          return std::string(c ? "1" : "0");
        });
      } else {
        fork_options.inherit_sinks = true;
        sim::ForkServer server(fork_options);
        std::unique_ptr<obs::MetricsRegistry> group_metrics;
        std::unique_ptr<obs::FlightRecorder> group_flight;
        if (obs::metrics() != nullptr) {
          group_metrics = std::make_unique<obs::MetricsRegistry>();
        }
        if (obs::flight() != nullptr) {
          obs::FlightRecorderOptions flight_options;
          flight_options.ring = obs.flight_ring();
          group_flight =
              std::make_unique<obs::FlightRecorder>(flight_options);
        }
        std::vector<sim::ForkOutcome> outcomes;
        {
          sim::TrialObsScope scope(group_metrics.get(), nullptr,
                                   group_flight.get());
          SpotDuelTrial trial(sim::DrawMode::kScalar);
          if (ramp_s > 0.0) {
            trial.advance(sim::Duration::from_sec_f(ramp_s));
          }
          outcomes = server.run(count, [&](std::size_t branch) {
            char c = 0;
            trial.engage(probes[base + branch].offset, &c);
            while (!trial.done()) trial.advance(sim::Duration::from_sec(1));
            trial.finish();
            return std::string(c ? "1" : "0");
          });
        }
        // Group scope dropped: the merge targets the session sinks.
        server.merge_obs();
        for (const sim::ForkOutcome& outcome : outcomes) {
          if (!outcome.ok) {
            std::fprintf(stderr, "bench_race_analysis: %s\n",
                         outcome.error.c_str());
            return 1;
          }
        }
        payloads.reserve(outcomes.size());
        for (sim::ForkOutcome& outcome : outcomes) {
          payloads.push_back(std::move(outcome.payload));
        }
      }
      for (std::size_t branch = 0; branch < payloads.size(); ++branch) {
        caught[base + branch] = static_cast<char>(payloads[branch] == "1");
      }
    }
    duel_trials = kProbeCount;
    duel_wall_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - fork_t0)
                      .count();
  } else if (batch > 1) {
    // Lockstep shards on the batched draw pipeline; output rows are
    // byte-identical to the scalar path below for every K.
    sim::BatchRunnerOptions batch_options;
    batch_options.batch = static_cast<std::size_t>(batch);
    batch_options.runner = duel_options;
    sim::BatchRunner duel_runner(batch_options);
    duel_runner.run(kProbeCount, [&probes, &caught, ramp_s](
                                     const sim::TrialContext& ctx) {
      return std::make_unique<SpotDuelTrial>(probes[ctx.index].offset,
                                             sim::DrawMode::kBatched,
                                             &caught[ctx.index], ramp_s);
    });
    duel_trials = duel_runner.trials_run();
    duel_wall_s = duel_runner.wall_seconds();
  } else {
    sim::TrialRunner duel_runner(duel_options);
    duel_runner.run(kProbeCount, [&probes, &caught, ramp_s](
                                     const sim::TrialContext& ctx) {
      SpotDuelTrial trial(probes[ctx.index].offset, sim::DrawMode::kScalar,
                          &caught[ctx.index], ramp_s);
      while (!trial.done()) trial.advance(sim::Duration::from_sec(1));
      trial.finish();
    });
    duel_trials = duel_runner.trials_run();
    duel_wall_s = duel_runner.wall_seconds();
  }
  for (std::size_t i = 0; i < kProbeCount; ++i) {
    bench::text_row("trace at " + std::to_string(probes[i].offset),
                    caught[i] ? "CAUGHT" : "escapes", probes[i].note);
  }

  bench::json_row("bench_race_analysis", mc_runner.trials_run() + duel_trials,
                  jobs, mc_runner.wall_seconds() + duel_wall_s);
  return 0;
}
