// §IV-C — Race Condition Analysis.
//
// Reproduces the closed-form bound (S <= 1,218,351 bytes; ~90% of the
// 11,916,240-byte kernel unprotected by a whole-kernel pass), a Monte
// Carlo over sampled timings, and event-driven spot duels against the
// PKM baseline across a ladder of trace depths: hijacks deep in the
// kernel (the GETTID entry among them) escape; traces inside the first
// ~1.2 MB are caught.
//
// Monte-Carlo batches and duels fan out over --jobs=J workers through
// sim::TrialRunner; the printed rows are bit-identical for any J (and,
// for the spot duels, for any --batch=K lockstep shard size).
#include <memory>

#include "attack/evader.h"
#include "bench/common.h"
#include "core/race_model.h"
#include "core/satin.h"
#include "scenario/experiments.h"
#include "sim/batch.h"
#include "sim/parallel.h"
#include "sim/stats.h"

namespace satin {
namespace {

// Event-driven duel with the rootkit's trace forced to `offset`: a bare
// evader (KProber + a rootkit whose single trace sits at the probe
// offset) against the PKM baseline. Decomposed as a LockstepTrial so a
// BatchRunner can interleave it with shard-mates; the --batch=1 path
// drives the very same class to completion inline.
class SpotDuelTrial final : public sim::LockstepTrial {
 public:
  SpotDuelTrial(std::size_t offset, sim::DrawMode mode, char* caught)
      : s_(spot_config(mode)),
        baseline_(s_.platform(), s_.kernel(), s_.tsp(),
                  core::make_pkm_baseline_config(1.0, true, true)),
        kit_(s_.os(), s_.platform().rng().fork("probe-kit")),
        prober_(s_.os(), attack::KProberConfig{}),
        caught_(caught) {
    baseline_.checker().authorize_boot_state();
    attack::TraceSpec trace;
    trace.name = "probe";
    trace.offset = offset;
    for (int i = 0; i < 8; ++i) {
      const auto b =
          s_.platform().memory().read(offset + static_cast<std::size_t>(i));
      trace.benign.push_back(b);
      trace.malicious.push_back(static_cast<std::uint8_t>(~b));
    }
    kit_.add_trace(trace);
    prober_.set_on_detect([this](hw::CoreId, sim::Time, sim::Duration) {
      if (kit_.installed() && !kit_.recovering()) {
        kit_.begin_recovery(hw::CoreType::kLittleA53, [this] {
          // Recovery can outlive a short stay; re-arm once the coast clears.
          if (!prober_.any_flagged() && !kit_.installed()) kit_.install();
        });
      }
    });
    prober_.set_on_clear([this](hw::CoreId, sim::Time) {
      // Re-arm only once NO core looks secure-held: overlapping rounds on
      // other cores may still be scanning.
      if (!prober_.any_flagged() && !kit_.installed() && !kit_.recovering()) {
        kit_.install();
      }
    });
    prober_.deploy();
    s_.run_for(sim::Duration::from_ms(10));  // prober warm-up
    baseline_.start();
    kit_.install();
  }

  bool done() const override { return baseline_.rounds() >= 6; }
  void advance(sim::Duration quantum) override { s_.run_for(quantum); }
  void finish() override {
    baseline_.stop();
    if (auto* registry = obs::metrics()) {
      obs::snapshot_engine_metrics(s_.engine(), *registry,
                                   /*include_wall=*/false);
    }
    *caught_ = static_cast<char>(baseline_.alarm_count() > 0);
  }

 private:
  static scenario::ScenarioConfig spot_config(sim::DrawMode mode) {
    scenario::ScenarioConfig config;
    config.platform.draw_mode = mode;
    return config;
  }

  scenario::Scenario s_;
  core::Satin baseline_;
  attack::Rootkit kit_;
  attack::KProber prober_;
  char* caught_;
};

// One Monte-Carlo batch: draws per batch from a seed that depends only on
// (root seed, batch index), so the total is independent of --jobs.
int mc_escapes(std::uint64_t seed, int draws,
               const hw::TimingParams& timing) {
  sim::Rng rng(seed);
  int escapes = 0;
  for (int i = 0; i < draws; ++i) {
    core::RaceParams p;
    p.ts_switch_s = timing.sample_switch(rng).sec();
    // Random introspecting core: 4 A53 + 2 A57.
    const bool big = rng.index(6) >= 4;
    p.ts_1byte_s = (big ? timing.hash_per_byte_a57 : timing.hash_per_byte_a53)
                       .sample_seconds(rng);
    p.tns_sched_s = timing.kprober_sleep_s;
    p.tns_threshold_s = timing.cross_core.worst_case_threshold_s;
    p.tns_recover_s = timing.recover_a53.sample_seconds(rng);
    // Attack bytes "appear randomly in the kernel".
    const auto offset = static_cast<std::size_t>(rng.uniform_int(0, 11'916'239));
    if (core::attacker_escapes(p, offset)) ++escapes;
  }
  return escapes;
}

}  // namespace
}  // namespace satin

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  hw::TimingParams timing;
  const int jobs = obs.jobs(/*fallback=*/1);

  bench::heading("Race-condition analysis (Eq. 1 / Eq. 2, §IV-C)");
  const core::RaceParams worst = core::worst_case_params(timing);
  const std::size_t bound = core::max_safe_area_bytes(worst);
  bench::text_row("S bound (bytes)", std::to_string(bound),
                  "(paper: 1218351)");
  bench::text_row("kernel size (bytes)", "11916240");
  bench::sci_row("unprotected fraction",
                 {core::unprotected_fraction(worst, 11'916'240)},
                 "(paper: ~90%)");

  bench::subheading("Monte Carlo over sampled timings (100k draws)");
  constexpr int kBatches = 100;
  constexpr int kDrawsPerBatch = 1'000;
  sim::TrialRunnerOptions mc_options;
  mc_options.jobs = jobs;
  mc_options.flight_ring = obs.flight_ring();
  mc_options.root_seed = 11;
  sim::TrialRunner mc_runner(mc_options);
  const std::vector<int> batch_escapes = mc_runner.run_collect(
      kBatches, [&timing](const sim::TrialContext& ctx) {
        return mc_escapes(ctx.seed, kDrawsPerBatch, timing);
      });
  int escapes = 0;
  for (int e : batch_escapes) escapes += e;
  const int draws = kBatches * kDrawsPerBatch;
  bench::sci_row("evasion success vs full-kernel pass",
                 {static_cast<double>(escapes) / draws}, "(paper: ~0.90)");

  bench::subheading("Event-driven spot duels vs PKM baseline");
  // A ladder of trace depths straddling the Eq.-2 bound; every duel is an
  // independent trial (own Scenario), fanned over the worker pool.
  struct Probe {
    std::size_t offset;
    const char* note;
  };
  const Probe probes[] = {
      {9'558'264, "(paper: escapes — gettid, outside the first ~1.2 MB)"},
      {6'000'000, "(deep half of the kernel)"},
      {3'000'000, "(beyond the bound)"},
      {2'000'000, "(beyond the bound)"},
      {1'500'000, "(just beyond the bound)"},
      {1'100'000, "(just inside the bound)"},
      {400'000, "(inside the protected prefix)"},
      {100'000, "(near the kernel base)"},
  };
  constexpr std::size_t kProbeCount = sizeof(probes) / sizeof(probes[0]);
  sim::TrialRunnerOptions duel_options;
  duel_options.jobs = jobs;
  duel_options.flight_ring = obs.flight_ring();
  std::vector<char> caught(kProbeCount, 0);
  std::size_t duel_trials = 0;
  double duel_wall_s = 0.0;
  const int batch = obs.batch(/*fallback=*/1);
  if (batch > 1) {
    // Lockstep shards on the batched draw pipeline; output rows are
    // byte-identical to the scalar path below for every K.
    sim::BatchRunnerOptions batch_options;
    batch_options.batch = static_cast<std::size_t>(batch);
    batch_options.runner = duel_options;
    sim::BatchRunner duel_runner(batch_options);
    duel_runner.run(kProbeCount, [&probes, &caught](
                                     const sim::TrialContext& ctx) {
      return std::make_unique<SpotDuelTrial>(probes[ctx.index].offset,
                                             sim::DrawMode::kBatched,
                                             &caught[ctx.index]);
    });
    duel_trials = duel_runner.trials_run();
    duel_wall_s = duel_runner.wall_seconds();
  } else {
    sim::TrialRunner duel_runner(duel_options);
    duel_runner.run(kProbeCount, [&probes, &caught](
                                     const sim::TrialContext& ctx) {
      SpotDuelTrial trial(probes[ctx.index].offset, sim::DrawMode::kScalar,
                          &caught[ctx.index]);
      while (!trial.done()) trial.advance(sim::Duration::from_sec(1));
      trial.finish();
    });
    duel_trials = duel_runner.trials_run();
    duel_wall_s = duel_runner.wall_seconds();
  }
  for (std::size_t i = 0; i < kProbeCount; ++i) {
    bench::text_row("trace at " + std::to_string(probes[i].offset),
                    caught[i] ? "CAUGHT" : "escapes", probes[i].note);
  }

  bench::json_row("bench_race_analysis", mc_runner.trials_run() + duel_trials,
                  jobs, mc_runner.wall_seconds() + duel_wall_s);
  return 0;
}
