// §IV-B1 / §IV-B2 — world-switch cost and attacker recovery time.
//
// 50 secure enter/leave round trips per core type (Ts_switch range
// 2.38e-6..3.60e-6 s) and 50 trace recoveries per core type
// (Tns_recover: A53 5.80e-3 s, A57 4.96e-3 s).
#include <chrono>

#include "attack/rootkit.h"
#include "bench/common.h"
#include "scenario/scenario.h"
#include "sim/stats.h"

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  const auto bench_start = std::chrono::steady_clock::now();
  scenario::Scenario s;

  bench::heading("Ts_switch: context switch into the secure world (s)");
  for (hw::CoreId core : {0, 5}) {
    sim::Accumulator acc;
    sim::Time handler_start;
    s.tsp().install_timer_service(
        [&](std::shared_ptr<hw::SecureSession> session) {
          handler_start = session->handler_start();
          acc.add((session->handler_start() - session->entry_time()).sec());
          session->complete();
        });
    for (int i = 0; i < 50; ++i) {
      s.platform().timer().program_secure(core,
                                          s.now() + sim::Duration::from_ms(1));
      s.run_for(sim::Duration::from_ms(2));
    }
    bench::sci_row(s.platform().core(core).name() + " avg/max/min",
                   {acc.mean(), acc.max(), acc.min()});
  }
  bench::sci_row("paper range (both cores)", {2.38e-6, 3.60e-6},
                 "(min, max; 50 runs of the TSP dispatcher)");

  bench::heading("Tns_recover: full trace recovery (s), 50 runs");
  attack::Rootkit rootkit(s.os(), s.platform().rng().fork("bench-rootkit"));
  rootkit.add_gettid_trace();
  for (auto [type, name, paper] :
       {std::tuple{hw::CoreType::kLittleA53, "A53", 5.80e-3},
        std::tuple{hw::CoreType::kBigA57, "A57", 4.96e-3}}) {
    sim::Accumulator acc;
    for (int i = 0; i < 50; ++i) {
      rootkit.install();
      rootkit.begin_recovery(type, [] {});
      s.run_for(sim::Duration::from_ms(10));
      acc.add(rootkit.last_recovery_duration().sec());
    }
    bench::sci_row(std::string(name) + " avg/max/min",
                   {acc.mean(), acc.max(), acc.min()});
    bench::sci_row(std::string(name) + " paper avg", {paper});
  }
  bench::json_row("bench_tswitch_recovery", 4u * 50u, 1,
                  std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - bench_start)
                      .count());
  return 0;
}
