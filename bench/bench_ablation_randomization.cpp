// Ablation — SATIN's randomization knobs (§V-C, §V-D).
//
// (a) Strictly periodic wake-ups fall to a *prediction* attack that needs
//     no side channel at all.
// (b) Randomized wake-ups defeat the same oracle schedule.
// (c) Pinning introspection to one core quarters the attacker's probing
//     threshold (faster, more reliable detection of the defender).
#include "attack/predictor.h"
#include "attack/threshold_sampler.h"
#include "bench/common.h"
#include "core/satin.h"
#include "scenario/scenario.h"
#include "sim/stats.h"

namespace satin {
namespace {

// An oracle attacker that memorized the period: hides 20 ms before every
// k*period mark, re-arms 200 ms after. Returns alarms/rounds.
std::pair<std::uint64_t, std::uint64_t> oracle_attack(bool randomize_wake,
                                                      int seconds) {
  scenario::Scenario s;
  core::SatinConfig config;
  config.multi_core = false;
  config.fixed_core = 5;
  config.randomize_wake = randomize_wake;
  config.tp_s = 1.0;
  core::Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  attack::PredictionConfig prediction;
  prediction.horizon_rounds = seconds;
  attack::PeriodicPredictionAttacker attacker(s.os(), prediction);
  attacker.deploy();
  s.run_for(sim::Duration::from_sec(seconds + 1));
  satin.stop();
  return {satin.alarm_count(), satin.rounds()};
}

}  // namespace
}  // namespace satin

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  bench::heading("Ablation: randomization knobs");

  // The randomized run is longer so area 14 gets several checks.
  const auto periodic = oracle_attack(false, 60);
  const auto randomized = oracle_attack(true, 150);
  bench::subheading("(a)/(b) prediction attack vs wake-up policy");
  bench::text_row("periodic: alarms/rounds",
                  std::to_string(periodic.first) + "/" +
                      std::to_string(periodic.second),
                  "(predictable => evaded)");
  bench::text_row("randomized: alarms/rounds",
                  std::to_string(randomized.first) + "/" +
                      std::to_string(randomized.second),
                  "(oracle schedule misfires)");

  bench::subheading("(c) probing threshold: fixed core vs all cores");
  hw::TimingParams timing;
  for (double period : {8.0, 120.0}) {
    attack::ThresholdSampler all(timing.cross_core, sim::Rng(3), 6);
    attack::ThresholdSampler one(timing.cross_core, sim::Rng(3), 1);
    sim::Accumulator acc_all, acc_one;
    for (int i = 0; i < 200; ++i) {
      acc_all.add(all.sample_window_max_seconds(period));
      acc_one.add(one.sample_window_max_seconds(period));
    }
    bench::sci_row("period " + std::to_string(static_cast<int>(period)) + " s",
                   {acc_one.mean(), acc_all.mean(),
                    acc_one.mean() / acc_all.mean()},
                   "(fixed-core, all-core, ratio; paper: ~1/4)");
  }
  std::printf(
      "\na predictable CPU affinity hands the attacker a 4x sharper\n"
      "side channel (§IV-B2) — SATIN therefore randomizes the core, the\n"
      "wake time AND the area (§V).\n");
  return 0;
}
