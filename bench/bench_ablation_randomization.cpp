// Ablation — SATIN's randomization knobs (§V-C, §V-D).
//
// (a) Strictly periodic wake-ups fall to a *prediction* attack that needs
//     no side channel at all.
// (b) Randomized wake-ups defeat the same oracle schedule.
// (c) Pinning introspection to one core quarters the attacker's probing
//     threshold (faster, more reliable detection of the defender).
//
// The two oracle duels and the two threshold periods each run as an
// independent trial over --jobs=J workers; seeds are fixed per trial, so
// the output is bit-identical for any J.
#include "attack/predictor.h"
#include "attack/threshold_sampler.h"
#include "bench/common.h"
#include "core/satin.h"
#include "scenario/scenario.h"
#include "sim/parallel.h"
#include "sim/stats.h"

namespace satin {
namespace {

// An oracle attacker that memorized the period: hides 20 ms before every
// k*period mark, re-arms 200 ms after. Returns alarms/rounds.
std::pair<std::uint64_t, std::uint64_t> oracle_attack(bool randomize_wake,
                                                      int seconds) {
  scenario::Scenario s;
  core::SatinConfig config;
  config.multi_core = false;
  config.fixed_core = 5;
  config.randomize_wake = randomize_wake;
  config.tp_s = 1.0;
  core::Satin satin(s.platform(), s.kernel(), s.tsp(), config);
  satin.start();
  attack::PredictionConfig prediction;
  prediction.horizon_rounds = seconds;
  attack::PeriodicPredictionAttacker attacker(s.os(), prediction);
  attacker.deploy();
  s.run_for(sim::Duration::from_sec(seconds + 1));
  satin.stop();
  if (auto* registry = obs::metrics()) {
    obs::snapshot_engine_metrics(s.engine(), *registry,
                                 /*include_wall=*/false);
  }
  return {satin.alarm_count(), satin.rounds()};
}

struct ThresholdRow {
  double mean_one = 0.0;
  double mean_all = 0.0;
};

}  // namespace
}  // namespace satin

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  const int jobs = obs.jobs(/*fallback=*/1);
  bench::heading("Ablation: randomization knobs");

  sim::TrialRunnerOptions options;
  options.jobs = jobs;
  options.flight_ring = obs.flight_ring();
  sim::TrialRunner runner(options);

  // The randomized run is longer so area 14 gets several checks.
  const auto duels = runner.run_collect(
      std::size_t{2}, [](const sim::TrialContext& ctx) {
        return ctx.index == 0 ? oracle_attack(false, 60)
                              : oracle_attack(true, 150);
      });
  const auto& periodic = duels[0];
  const auto& randomized = duels[1];
  bench::subheading("(a)/(b) prediction attack vs wake-up policy");
  bench::text_row("periodic: alarms/rounds",
                  std::to_string(periodic.first) + "/" +
                      std::to_string(periodic.second),
                  "(predictable => evaded)");
  bench::text_row("randomized: alarms/rounds",
                  std::to_string(randomized.first) + "/" +
                      std::to_string(randomized.second),
                  "(oracle schedule misfires)");

  bench::subheading("(c) probing threshold: fixed core vs all cores");
  hw::TimingParams timing;
  const double periods[] = {8.0, 120.0};
  const auto threshold_rows = runner.run_collect(
      std::size_t{2}, [&timing, &periods](const sim::TrialContext& ctx) {
        const double period = periods[ctx.index];
        attack::ThresholdSampler all(timing.cross_core, sim::Rng(3), 6);
        attack::ThresholdSampler one(timing.cross_core, sim::Rng(3), 1);
        sim::Accumulator acc_all, acc_one;
        for (int i = 0; i < 200; ++i) {
          acc_all.add(all.sample_window_max_seconds(period));
          acc_one.add(one.sample_window_max_seconds(period));
        }
        return ThresholdRow{acc_one.mean(), acc_all.mean()};
      });
  for (std::size_t i = 0; i < 2; ++i) {
    bench::sci_row(
        "period " + std::to_string(static_cast<int>(periods[i])) + " s",
        {threshold_rows[i].mean_one, threshold_rows[i].mean_all,
         threshold_rows[i].mean_one / threshold_rows[i].mean_all},
        "(fixed-core, all-core, ratio; paper: ~1/4)");
  }
  std::printf(
      "\na predictable CPU affinity hands the attacker a 4x sharper\n"
      "side channel (§IV-B2) — SATIN therefore randomizes the core, the\n"
      "wake time AND the area (§V).\n");
  bench::json_row("bench_ablation_randomization", runner.trials_run(), jobs,
                  runner.wall_seconds());
  return 0;
}
