// Table I — Secure World Introspection Time.
//
// 50 timed scans per (core type, strategy); reports seconds-per-byte
// avg/max/min exactly as the paper's table does, plus the §III-B1
// whole-kernel check time (8.04e-2 s).
#include <chrono>

#include "bench/common.h"
#include "scenario/scenario.h"
#include "secure/introspect.h"
#include "sim/stats.h"

namespace satin {
namespace {

struct Row {
  double avg, max, min;
};

Row measure(scenario::Scenario& s, hw::CoreId core,
            secure::ScanStrategy strategy) {
  secure::Introspector intro(s.platform(), secure::HashKind::kDjb2, strategy);
  sim::Accumulator acc;
  const std::size_t length = 1u << 20;
  for (int i = 0; i < 50; ++i) {
    bool done = false;
    intro.scan_async(core, 0, length, [&](const secure::ScanResult& r) {
      acc.add((r.scan_end - r.scan_start).sec() /
              static_cast<double>(r.length));
      done = true;
    });
    s.run_for(sim::Duration::from_ms(50));
    if (!done) std::abort();
  }
  return Row{acc.mean(), acc.max(), acc.min()};
}

}  // namespace
}  // namespace satin

int main(int argc, char** argv) {
  satin::bench::ObsGuard obs(argc, argv);
  using namespace satin;
  scenario::Scenario s;

  bench::heading("Table I: Secure World Introspection Time (s/byte)");
  bench::columns("Core-Time", {"Hash 1-Byte", "Snapshot", "paper-hash",
                               "paper-snap"});
  const auto bench_start = std::chrono::steady_clock::now();
  const hw::CoreId a53 = 0;
  const hw::CoreId a57 = 5;
  const auto h53 = measure(s, a53, secure::ScanStrategy::kDirectHash);
  const auto s53 = measure(s, a53, secure::ScanStrategy::kSnapshotThenHash);
  const auto h57 = measure(s, a57, secure::ScanStrategy::kDirectHash);
  const auto s57 = measure(s, a57, secure::ScanStrategy::kSnapshotThenHash);
  const double bench_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    bench_start)
          .count();
  bench::json_row("bench_table1_introspection_time", 4u * 50u, 1,
                  bench_wall_s);

  bench::sci_row("A53-Average", {h53.avg, s53.avg, 1.07e-8, 1.08e-8});
  bench::sci_row("A53-Max", {h53.max, s53.max, 1.14e-8, 1.57e-8});
  bench::sci_row("A53-Min", {h53.min, s53.min, 9.23e-9, 9.24e-9});
  bench::sci_row("A57-Average", {h57.avg, s57.avg, 6.71e-9, 6.75e-9});
  bench::sci_row("A57-Max", {h57.max, s57.max, 7.50e-9, 7.83e-9});
  bench::sci_row("A57-Min", {h57.min, s57.min, 6.67e-9, 6.67e-9});

  bench::subheading("Structural findings");
  std::printf("direct hash <= snapshot per byte: %s\n",
              h53.avg <= s53.avg && h57.avg <= s57.avg ? "yes (as paper)"
                                                       : "NO");
  std::printf("A57 faster than A53:              %s\n",
              h57.avg < h53.avg ? "yes (as paper)" : "NO");

  // §III-B1: "the average time for one core to conduct a kernel integrity
  // check is 8.04e-2 s" (whole 11,916,240-byte kernel).
  const double kernel_bytes = 11'916'240.0;
  bench::subheading("Whole-kernel integrity check (s)");
  bench::sci_row("A57 direct hash", {h57.avg * kernel_bytes, 8.04e-2},
                 "(measured, paper)");
  bench::sci_row("A53 direct hash", {h53.avg * kernel_bytes});
  return 0;
}
